//! Preprocessing: k-core filtering, chronological leave-one-out splits, and
//! streaming TSV→`.mbds` conversion in bounded memory.

#![allow(clippy::needless_range_loop)] // multi-array index loops are clearer here

use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::format::{FormatError, MbdsStreamWriter};
use crate::io::{parse_interaction_line, IoError};
use crate::types::{Behavior, Dataset, Interaction, ItemId, Sequence, UserId};

/// Iteratively removes users with fewer than `k_user` events and items with
/// fewer than `k_item` events until stable, then densely remaps ids.
///
/// This is the standard k-core cleanup of recommendation pipelines; it also
/// guarantees every surviving user has enough history to split.
pub fn k_core(dataset: &Dataset, k_user: usize, k_item: usize) -> Dataset {
    let mut keep_user = vec![true; dataset.num_users];
    let mut keep_item = vec![true; dataset.num_items + 1];
    loop {
        let mut changed = false;
        // Count events restricted to kept users/items.
        let mut item_counts = vec![0usize; dataset.num_items + 1];
        let mut user_counts = vec![0usize; dataset.num_users];
        for (u, seq) in dataset.sequences.iter().enumerate() {
            if !keep_user[u] {
                continue;
            }
            for &it in &seq.items {
                if keep_item[it as usize] {
                    user_counts[u] += 1;
                    item_counts[it as usize] += 1;
                }
            }
        }
        for u in 0..dataset.num_users {
            if keep_user[u] && user_counts[u] < k_user {
                keep_user[u] = false;
                changed = true;
            }
        }
        for it in 1..=dataset.num_items {
            if keep_item[it] && item_counts[it] < k_item {
                keep_item[it] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Dense remap of surviving items (1-based) and users.
    let mut item_map: HashMap<ItemId, ItemId> = HashMap::new();
    let mut next_item: ItemId = 1;
    for it in 1..=dataset.num_items {
        if keep_item[it] {
            item_map.insert(it as ItemId, next_item);
            next_item += 1;
        }
    }
    let mut sequences = Vec::new();
    for (u, seq) in dataset.sequences.iter().enumerate() {
        if !keep_user[u] {
            continue;
        }
        let mut new_seq = Sequence::new();
        for (&it, &b) in seq.items.iter().zip(seq.behaviors.iter()) {
            if let Some(&mapped) = item_map.get(&it) {
                new_seq.push(mapped, b);
            }
        }
        if !new_seq.is_empty() {
            sequences.push(new_seq);
        }
    }
    Dataset {
        name: dataset.name.clone(),
        num_users: sequences.len(),
        num_items: (next_item - 1) as usize,
        behaviors: dataset.behaviors.clone(),
        target_behavior: dataset.target_behavior,
        sequences,
    }
}

/// Why a streaming TSV→`.mbds` conversion failed.
#[derive(Debug)]
pub enum ConvertError {
    /// TSV-level failure (parse error, filesystem error, empty log, target
    /// behavior absent) — same errors the in-memory loader produces.
    Io(IoError),
    /// `.mbds` writer failure.
    Format(FormatError),
    /// The TSV is not grouped by ascending user id with nondecreasing
    /// timestamps per user — the precondition for single-pass streaming.
    /// Callers should warn and fall back to [`convert_tsv_in_memory`].
    NotSorted {
        /// 1-based line number of the first out-of-order event.
        line: usize,
        /// What was out of order.
        message: String,
    },
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::Io(e) => write!(f, "{e}"),
            ConvertError::Format(e) => write!(f, "{e}"),
            ConvertError::NotSorted { line, message } => {
                write!(f, "line {line}: not sorted for streaming ({message})")
            }
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<IoError> for ConvertError {
    fn from(e: IoError) -> Self {
        ConvertError::Io(e)
    }
}

impl From<FormatError> for ConvertError {
    fn from(e: FormatError) -> Self {
        ConvertError::Format(e)
    }
}

impl From<std::io::Error> for ConvertError {
    fn from(e: std::io::Error) -> Self {
        ConvertError::Io(IoError::Io(e))
    }
}

/// What a TSV→`.mbds` conversion did: raw log size, surviving size after
/// k-core, number of full passes over the TSV, and output bytes.
#[derive(Clone, Copy, Debug)]
pub struct ConvertReport {
    /// Distinct users in the raw log.
    pub users_in: usize,
    /// Distinct items in the raw log.
    pub items_in: usize,
    /// Events in the raw log.
    pub events_in: usize,
    /// Users surviving k-core.
    pub users_out: usize,
    /// Items surviving k-core.
    pub items_out: usize,
    /// Events surviving k-core.
    pub events_out: usize,
    /// Full scans over the TSV (1 census + one per k-core re-count + 1 write).
    pub passes: usize,
    /// Size of the written `.mbds` file in bytes.
    pub bytes_written: u64,
}

/// Scans a TSV file once, invoking `f` for every event row.
fn scan_tsv(
    path: &Path,
    mut f: impl FnMut(usize, Interaction) -> Result<(), ConvertError>,
) -> Result<(), ConvertError> {
    let file = std::fs::File::open(path).map_err(IoError::Io)?;
    let reader = std::io::BufReader::new(file);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(IoError::Io)?;
        if let Some(inter) = parse_interaction_line(lineno, &line)? {
            f(lineno, inter)?;
        }
    }
    Ok(())
}

/// Converts a sorted TSV log to `.mbds` with k-core filtering in bounded
/// memory: O(users + items) state, never materializing the event log.
///
/// Requires the TSV to be grouped by ascending raw user id with
/// nondecreasing timestamps within each user (what [`crate::io::save_tsv`]
/// and `mbssl synth` emit); otherwise fails with [`ConvertError::NotSorted`]
/// and the caller should fall back to [`convert_tsv_in_memory`]. For inputs
/// in that order, the output dataset is **identical** to
/// `k_core(load_tsv(path, target), k_user, k_item)` — same dense ids, same
/// event order — because a stable sort by `(user, timestamp)` of an
/// already-grouped log is the log itself.
///
/// The algorithm makes `2 + r` sequential passes over the TSV, where `r` is
/// the number of k-core refinement rounds that changed something: one
/// census pass (count per user/item, verify ordering), `r` re-count passes
/// restricted to surviving users/items, and one write pass streaming the
/// surviving events through [`MbdsStreamWriter`].
pub fn convert_tsv_streaming(
    tsv: &Path,
    out: &Path,
    target: Behavior,
    k_user: usize,
    k_item: usize,
) -> Result<ConvertReport, ConvertError> {
    // Pass 1 (census): verify streaming order, assign dense ids by first
    // appearance, count events per user/item, collect the behavior set.
    let mut user_raw: Vec<UserId> = Vec::new();
    let mut user_counts: Vec<usize> = Vec::new();
    let mut item_index: HashMap<ItemId, u32> = HashMap::new();
    let mut item_counts: Vec<usize> = Vec::new();
    let mut behaviors_present: Vec<Behavior> = Vec::new();
    let mut events_in = 0usize;
    let mut prev: Option<(UserId, i64)> = None;
    scan_tsv(tsv, |lineno, inter| {
        match prev {
            Some((pu, _)) if inter.user < pu => {
                return Err(ConvertError::NotSorted {
                    line: lineno + 1,
                    message: format!("user {} after user {pu}", inter.user),
                });
            }
            Some((pu, pt)) if inter.user == pu && inter.timestamp < pt => {
                return Err(ConvertError::NotSorted {
                    line: lineno + 1,
                    message: format!(
                        "timestamp {} after {pt} for user {pu}",
                        inter.timestamp
                    ),
                });
            }
            _ => {}
        }
        if prev.map(|(pu, _)| pu) != Some(inter.user) {
            user_raw.push(inter.user);
            user_counts.push(0);
        }
        prev = Some((inter.user, inter.timestamp));
        *user_counts.last_mut().unwrap() += 1;
        let next = item_index.len() as u32;
        let idx = *item_index.entry(inter.item).or_insert(next);
        if idx as usize == item_counts.len() {
            item_counts.push(0);
        }
        item_counts[idx as usize] += 1;
        if !behaviors_present.contains(&inter.behavior) {
            behaviors_present.push(inter.behavior);
        }
        events_in += 1;
        Ok(())
    })?;
    if events_in == 0 {
        return Err(ConvertError::Io(IoError::Empty));
    }
    behaviors_present.sort_by_key(|b| b.depth());
    if !behaviors_present.contains(&target) {
        return Err(ConvertError::Io(IoError::Parse {
            line: 0,
            message: format!("target behavior {target:?} absent from log"),
        }));
    }
    let num_users_in = user_raw.len();
    let num_items_in = item_index.len();

    // k-core fixpoint, mirroring `k_core` exactly: update keeps from the
    // current counts (users first, then items); when an update changes
    // nothing the counts are consistent with the final keep sets. Each
    // changed round re-counts with one sequential pass over the TSV.
    let mut keep_user = vec![true; num_users_in];
    let mut keep_item = vec![true; num_items_in];
    let mut passes = 1usize;
    loop {
        let mut changed = false;
        for u in 0..num_users_in {
            if keep_user[u] && user_counts[u] < k_user {
                keep_user[u] = false;
                changed = true;
            }
        }
        for i in 0..num_items_in {
            if keep_item[i] && item_counts[i] < k_item {
                keep_item[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        user_counts.iter_mut().for_each(|c| *c = 0);
        item_counts.iter_mut().for_each(|c| *c = 0);
        let mut cursor = usize::MAX; // advances through user runs in order
        let mut cur_raw: Option<UserId> = None;
        scan_tsv(tsv, |lineno, inter| {
            if cur_raw != Some(inter.user) {
                cursor = cursor.wrapping_add(1);
                cur_raw = Some(inter.user);
                if user_raw.get(cursor) != Some(&inter.user) {
                    return Err(ConvertError::NotSorted {
                        line: lineno + 1,
                        message: "file changed between passes".to_string(),
                    });
                }
            }
            let idx = item_index[&inter.item] as usize;
            if keep_user[cursor] && keep_item[idx] {
                user_counts[cursor] += 1;
                item_counts[idx] += 1;
            }
            Ok(())
        })?;
        passes += 1;
    }

    // Dense remap of survivors: items in first-appearance order (their old
    // dense order), users in file order — matching `k_core`'s remap of
    // `load_tsv`'s id assignment.
    let mut item_remap: Vec<ItemId> = vec![0; num_items_in];
    let mut next_item: ItemId = 1;
    for i in 0..num_items_in {
        if keep_item[i] {
            item_remap[i] = next_item;
            next_item += 1;
        }
    }
    let items_out = (next_item - 1) as usize;
    let users_out = (0..num_users_in)
        .filter(|&u| keep_user[u] && user_counts[u] > 0)
        .count();
    let events_out: usize = (0..num_users_in)
        .filter(|&u| keep_user[u])
        .map(|u| user_counts[u])
        .sum();

    // Write pass: stream surviving events through the columnar writer,
    // buffering only one user's events at a time.
    let name = tsv
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "dataset".to_string());
    let mut writer = MbdsStreamWriter::create(out, &name, &behaviors_present, target)?;
    writer.set_kcore(k_user, k_item);
    let mut buf_items: Vec<ItemId> = Vec::new();
    let mut buf_behaviors: Vec<Behavior> = Vec::new();
    let mut buf_ts: Vec<i64> = Vec::new();
    let mut cursor = usize::MAX;
    let mut cur_raw: Option<UserId> = None;
    {
        let flush = |bi: &mut Vec<ItemId>,
                         bb: &mut Vec<Behavior>,
                         bt: &mut Vec<i64>,
                         w: &mut MbdsStreamWriter|
         -> Result<(), ConvertError> {
            if !bi.is_empty() {
                w.append_user(bi, bb, bt)?;
                bi.clear();
                bb.clear();
                bt.clear();
            }
            Ok(())
        };
        scan_tsv(tsv, |lineno, inter| {
            if cur_raw != Some(inter.user) {
                flush(&mut buf_items, &mut buf_behaviors, &mut buf_ts, &mut writer)?;
                cursor = cursor.wrapping_add(1);
                cur_raw = Some(inter.user);
                if user_raw.get(cursor) != Some(&inter.user) {
                    return Err(ConvertError::NotSorted {
                        line: lineno + 1,
                        message: "file changed between passes".to_string(),
                    });
                }
            }
            let idx = item_index[&inter.item] as usize;
            if keep_user[cursor] && keep_item[idx] {
                buf_items.push(item_remap[idx]);
                buf_behaviors.push(inter.behavior);
                buf_ts.push(inter.timestamp);
            }
            Ok(())
        })?;
        flush(&mut buf_items, &mut buf_behaviors, &mut buf_ts, &mut writer)?;
    }
    passes += 1;
    let bytes_written = writer.finish(items_out)?;

    Ok(ConvertReport {
        users_in: num_users_in,
        items_in: num_items_in,
        events_in,
        users_out,
        items_out,
        events_out,
        passes,
        bytes_written,
    })
}

/// Fallback conversion for TSVs that are not stream-sorted: materializes
/// the log via [`crate::io::load_tsv`], applies [`k_core`], and writes the
/// result with [`crate::format::write_mbds`]. O(events) memory. Note the
/// original timestamps are replaced by the per-user event index (the sort
/// has already been applied), exactly as [`crate::io::save_tsv`] does.
pub fn convert_tsv_in_memory(
    tsv: &Path,
    out: &Path,
    target: Behavior,
    k_user: usize,
    k_item: usize,
) -> Result<ConvertReport, ConvertError> {
    let raw = crate::io::load_tsv(tsv, target)?;
    let filtered = k_core(&raw, k_user, k_item);
    let bytes_written = crate::format::write_mbds_kcore(&filtered, out, k_user, k_item)?;
    Ok(ConvertReport {
        users_in: raw.num_users,
        items_in: raw.num_items,
        events_in: raw.num_interactions(),
        users_out: filtered.num_users,
        items_out: filtered.num_items,
        events_out: filtered.num_interactions(),
        passes: 1,
        bytes_written,
    })
}

/// One training example: predict `target` (a target-behavior item) from the
/// multi-behavior `history` strictly before it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainInstance {
    /// Owning user.
    pub user: UserId,
    /// Multi-behavior history strictly before the target.
    pub history: Sequence,
    /// The target-behavior item to predict.
    pub target: ItemId,
}

/// One ranking-evaluation example (validation or test).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalInstance {
    /// Owning user.
    pub user: UserId,
    /// Multi-behavior history strictly before the target.
    pub history: Sequence,
    /// The held-out target-behavior item.
    pub target: ItemId,
}

/// Output of the leave-one-out protocol.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training examples (second-to-last target and earlier).
    pub train: Vec<TrainInstance>,
    /// Validation examples (second-to-last target per user).
    pub val: Vec<EvalInstance>,
    /// Test examples (last target per user).
    pub test: Vec<EvalInstance>,
    /// Per-user full training history (events before the validation
    /// target), used by non-parametric baselines (POP, ItemKNN).
    pub train_histories: Vec<(UserId, Sequence)>,
    /// Catalog size carried over from the source dataset.
    pub num_items: usize,
    /// The behavior whose next item is predicted.
    pub target_behavior: Behavior,
}

/// Split options.
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Keep at most this many most-recent events in any history.
    pub max_seq_len: usize,
    /// Users need at least this many target-behavior events to contribute
    /// val/test instances (the standard is 3: ≥1 train + 1 val + 1 test).
    pub min_target_events: usize,
    /// Cap on per-user training instances (most recent kept) to bound
    /// epoch cost; `usize::MAX` disables.
    pub max_train_per_user: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            max_seq_len: 50,
            min_target_events: 3,
            max_train_per_user: 8,
        }
    }
}

/// Chronological leave-one-out:
/// - the **last** target-behavior event of each user is the test target;
/// - the **second-to-last** is the validation target;
/// - every earlier target-behavior event yields a training instance.
///
/// Histories always contain *all* behaviors before the target event and are
/// truncated to the most recent `max_seq_len` events.
pub fn leave_one_out(dataset: &Dataset, config: &SplitConfig) -> Split {
    let target = dataset.target_behavior;
    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    let mut train_histories = Vec::new();

    for (u, seq) in dataset.sequences.iter().enumerate() {
        let user = u as UserId;
        let target_positions = seq.positions_of(target);
        if target_positions.len() < config.min_target_events {
            // Not enough signal to hold out; keep all events as training
            // instances (if ≥1 target and non-empty history).
            for &pos in &target_positions {
                if pos == 0 {
                    continue;
                }
                train.push(TrainInstance {
                    user,
                    history: history_before(seq, pos, config.max_seq_len),
                    target: seq.items[pos],
                });
            }
            if !target_positions.is_empty() {
                let last = *target_positions.last().unwrap();
                train_histories.push((user, history_before(seq, last + 1, config.max_seq_len)));
            }
            continue;
        }
        let test_pos = *target_positions.last().unwrap();
        let val_pos = target_positions[target_positions.len() - 2];

        let mut user_train: Vec<TrainInstance> = Vec::new();
        for &pos in &target_positions[..target_positions.len() - 2] {
            if pos == 0 {
                continue;
            }
            user_train.push(TrainInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        if user_train.len() > config.max_train_per_user {
            let skip = user_train.len() - config.max_train_per_user;
            user_train.drain(..skip);
        }
        train.extend(user_train);

        if val_pos > 0 {
            val.push(EvalInstance {
                user,
                history: history_before(seq, val_pos, config.max_seq_len),
                target: seq.items[val_pos],
            });
        }
        test.push(EvalInstance {
            user,
            history: history_before(seq, test_pos, config.max_seq_len),
            target: seq.items[test_pos],
        });
        train_histories.push((user, history_before(seq, val_pos, config.max_seq_len)));
    }

    Split {
        train,
        val,
        test,
        train_histories,
        num_items: dataset.num_items,
        target_behavior: target,
    }
}

/// The multi-behavior history strictly before event index `pos`, truncated
/// to the last `max_len` events.
fn history_before(seq: &Sequence, pos: usize, max_len: usize) -> Sequence {
    Sequence {
        items: seq.items[..pos].to_vec(),
        behaviors: seq.behaviors[..pos].to_vec(),
    }
    .truncate_to_recent(max_len)
}

/// Global temporal split: per user, the first `1 - val_frac - test_frac`
/// fraction of target-behavior events trains, the next `val_frac` fraction
/// validates, and the remainder tests — the alternative protocol to
/// leave-one-out, closer to production retraining cadence (no per-user
/// single holdout; late events are never used as training history for
/// earlier targets).
///
/// Fractions apply to each user's own timeline, which approximates a
/// global time cut when user activity spans the log uniformly (true for
/// the synthetic generator).
pub fn temporal_split(
    dataset: &Dataset,
    config: &SplitConfig,
    val_frac: f64,
    test_frac: f64,
) -> Split {
    assert!(val_frac >= 0.0 && test_frac > 0.0 && val_frac + test_frac < 1.0);
    let target = dataset.target_behavior;
    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    let mut train_histories = Vec::new();

    for (u, seq) in dataset.sequences.iter().enumerate() {
        let user = u as UserId;
        let positions = seq.positions_of(target);
        if positions.len() < config.min_target_events {
            continue;
        }
        let n = positions.len();
        let test_start = ((n as f64) * (1.0 - test_frac)).floor() as usize;
        let val_start = ((n as f64) * (1.0 - test_frac - val_frac)).floor() as usize;
        let val_start = val_start.min(test_start).max(1); // ≥1 training target
        let test_start = test_start.clamp(val_start, n - 1);

        let mut user_train = Vec::new();
        for &pos in &positions[..val_start] {
            if pos == 0 {
                continue;
            }
            user_train.push(TrainInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        if user_train.len() > config.max_train_per_user {
            let skip = user_train.len() - config.max_train_per_user;
            user_train.drain(..skip);
        }
        train.extend(user_train);
        for &pos in &positions[val_start..test_start] {
            val.push(EvalInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        for &pos in &positions[test_start..] {
            test.push(EvalInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        let boundary = positions[val_start];
        train_histories.push((user, history_before(seq, boundary, config.max_seq_len)));
    }

    Split {
        train,
        val,
        test,
        train_histories,
        num_items: dataset.num_items,
        target_behavior: target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn build_seq(events: &[(ItemId, Behavior)]) -> Sequence {
        let mut s = Sequence::new();
        for &(i, b) in events {
            s.push(i, b);
        }
        s
    }

    fn toy_dataset() -> Dataset {
        use Behavior::*;
        Dataset {
            name: "toy".into(),
            num_users: 2,
            num_items: 6,
            behaviors: vec![Click, Purchase],
            target_behavior: Purchase,
            sequences: vec![
                build_seq(&[
                    (1, Click),
                    (1, Purchase),
                    (2, Click),
                    (3, Click),
                    (3, Purchase),
                    (4, Click),
                    (4, Purchase),
                    (5, Click),
                    (5, Purchase),
                ]),
                build_seq(&[(2, Click), (2, Purchase), (3, Click)]),
            ],
        }
    }

    #[test]
    fn loo_assigns_last_to_test_second_last_to_val() {
        let split = leave_one_out(&toy_dataset(), &SplitConfig::default());
        // User 0 has 4 purchases (1,3,4,5): test=5, val=4, train targets {1,3}.
        assert_eq!(split.test.len(), 1);
        assert_eq!(split.test[0].target, 5);
        assert_eq!(split.val[0].target, 4);
        let train_targets: Vec<ItemId> = split
            .train
            .iter()
            .filter(|t| t.user == 0)
            .map(|t| t.target)
            .collect();
        assert_eq!(train_targets, vec![1, 3]);
    }

    #[test]
    fn histories_are_strictly_before_target() {
        let split = leave_one_out(&toy_dataset(), &SplitConfig::default());
        let test = &split.test[0];
        // History before the last purchase of item 5 contains the click on 5.
        assert_eq!(*test.history.items.last().unwrap(), 5);
        assert_eq!(*test.history.behaviors.last().unwrap(), Behavior::Click);
        // And does not contain the target event itself.
        assert_eq!(test.history.len(), 8);
    }

    #[test]
    fn short_users_stay_in_training_only() {
        let split = leave_one_out(&toy_dataset(), &SplitConfig::default());
        // User 1 has a single purchase: no val/test, 1 training instance.
        assert!(split.test.iter().all(|t| t.user == 0));
        assert!(split.val.iter().all(|t| t.user == 0));
        let u1: Vec<_> = split.train.iter().filter(|t| t.user == 1).collect();
        assert_eq!(u1.len(), 1);
        assert_eq!(u1[0].target, 2);
    }

    #[test]
    fn max_seq_len_truncates() {
        let cfg = SplitConfig {
            max_seq_len: 2,
            ..SplitConfig::default()
        };
        let split = leave_one_out(&toy_dataset(), &cfg);
        assert!(split.test[0].history.len() <= 2);
    }

    #[test]
    fn max_train_per_user_caps_and_keeps_recent() {
        let cfg = SplitConfig {
            max_train_per_user: 1,
            ..SplitConfig::default()
        };
        let split = leave_one_out(&toy_dataset(), &cfg);
        let u0: Vec<_> = split.train.iter().filter(|t| t.user == 0).collect();
        assert_eq!(u0.len(), 1);
        assert_eq!(u0[0].target, 3); // the more recent of {1, 3}
    }

    #[test]
    fn k_core_removes_sparse_and_remaps() {
        let d = toy_dataset();
        let filtered = k_core(&d, 4, 2);
        filtered.validate().unwrap();
        // User 1 (3 events) is removed.
        assert_eq!(filtered.num_users, 1);
        // All item ids dense in 1..=num_items.
        for seq in &filtered.sequences {
            for &it in &seq.items {
                assert!(it >= 1 && it as usize <= filtered.num_items);
            }
        }
    }

    #[test]
    fn k_core_is_idempotent() {
        let g = SyntheticConfig::taobao_like(11).scaled(0.1).generate();
        let once = k_core(&g.dataset, 5, 3);
        let twice = k_core(&once, 5, 3);
        assert_eq!(once.num_users, twice.num_users);
        assert_eq!(once.num_items, twice.num_items);
        assert_eq!(once.num_interactions(), twice.num_interactions());
    }

    #[test]
    fn temporal_split_ordering_invariants() {
        let g = SyntheticConfig::taobao_like(14).scaled(0.1).generate();
        let split = temporal_split(&g.dataset, &SplitConfig::default(), 0.1, 0.2);
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
        // Multiple test instances per user are allowed; the test set must
        // be larger than the leave-one-out one for 20% test fraction.
        let loo = leave_one_out(&g.dataset, &SplitConfig::default());
        assert!(split.test.len() >= loo.test.len() / 2);
        // Every history respects max_seq_len and is non-empty.
        for inst in split.test.iter().chain(split.val.iter()) {
            assert!(!inst.history.is_empty());
            assert!(inst.history.len() <= 50);
        }
    }

    #[test]
    fn temporal_split_train_strictly_precedes_test_per_user() {
        let g = SyntheticConfig::yelp_like(15).scaled(0.1).generate();
        let cfg = SplitConfig {
            max_seq_len: usize::MAX >> 1,
            ..SplitConfig::default()
        };
        let split = temporal_split(&g.dataset, &cfg, 0.1, 0.2);
        // For each user: max train history length < min test history
        // length (histories are prefixes, so length orders events in time).
        use std::collections::HashMap;
        let mut max_train: HashMap<u32, usize> = HashMap::new();
        for t in &split.train {
            let e = max_train.entry(t.user).or_insert(0);
            *e = (*e).max(t.history.len());
        }
        for t in &split.test {
            if let Some(&mt) = max_train.get(&t.user) {
                assert!(
                    t.history.len() >= mt,
                    "test event earlier than a training event for user {}",
                    t.user
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn temporal_split_rejects_bad_fractions() {
        let g = SyntheticConfig::yelp_like(16).scaled(0.05).generate();
        temporal_split(&g.dataset, &SplitConfig::default(), 0.6, 0.6);
    }

    #[test]
    fn streaming_convert_matches_in_memory_pipeline() {
        let g = SyntheticConfig::taobao_like(21).scaled(0.1).generate();
        let dir = std::env::temp_dir().join(format!("mbssl_conv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("log.tsv");
        crate::io::save_tsv(&g.dataset, &tsv).unwrap();
        let out = dir.join("log.mbds");
        let report =
            convert_tsv_streaming(&tsv, &out, g.dataset.target_behavior, 5, 3).unwrap();
        let expected = k_core(
            &crate::io::load_tsv(&tsv, g.dataset.target_behavior).unwrap(),
            5,
            3,
        );
        let loaded = crate::format::MbdsFile::open(&out).unwrap().to_dataset();
        assert_eq!(loaded.num_users, expected.num_users);
        assert_eq!(loaded.num_items, expected.num_items);
        assert_eq!(loaded.behaviors, expected.behaviors);
        assert_eq!(loaded.sequences, expected.sequences);
        assert_eq!(report.users_out, expected.num_users);
        assert_eq!(report.events_out, expected.num_interactions());
        assert!(report.passes >= 2);
        std::fs::remove_file(&tsv).ok();
        std::fs::remove_file(&out).ok();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn streaming_convert_rejects_unsorted() {
        let dir = std::env::temp_dir().join(format!("mbssl_unsort_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("log.tsv");
        std::fs::write(&tsv, "1\t1\tclick\t0\n0\t1\tpurchase\t1\n").unwrap();
        let out = dir.join("log.mbds");
        let err = convert_tsv_streaming(&tsv, &out, Behavior::Purchase, 0, 0).unwrap_err();
        assert!(matches!(err, ConvertError::NotSorted { line: 2, .. }));
        assert!(!out.exists());
        std::fs::remove_file(&tsv).ok();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn split_on_synthetic_covers_most_users() {
        let g = SyntheticConfig::taobao_like(13).scaled(0.15).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        assert!(!split.train.is_empty());
        assert!(split.test.len() > g.dataset.num_users / 2);
        assert_eq!(split.val.len(), split.test.len());
        // Eval targets are valid items.
        for inst in split.test.iter().chain(split.val.iter()) {
            assert!(inst.target >= 1 && inst.target as usize <= split.num_items);
            assert!(!inst.history.is_empty());
        }
    }
}
