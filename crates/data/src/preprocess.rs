//! Preprocessing: k-core filtering and chronological leave-one-out splits.

#![allow(clippy::needless_range_loop)] // multi-array index loops are clearer here

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::types::{Behavior, Dataset, ItemId, Sequence, UserId};

/// Iteratively removes users with fewer than `k_user` events and items with
/// fewer than `k_item` events until stable, then densely remaps ids.
///
/// This is the standard k-core cleanup of recommendation pipelines; it also
/// guarantees every surviving user has enough history to split.
pub fn k_core(dataset: &Dataset, k_user: usize, k_item: usize) -> Dataset {
    let mut keep_user = vec![true; dataset.num_users];
    let mut keep_item = vec![true; dataset.num_items + 1];
    loop {
        let mut changed = false;
        // Count events restricted to kept users/items.
        let mut item_counts = vec![0usize; dataset.num_items + 1];
        let mut user_counts = vec![0usize; dataset.num_users];
        for (u, seq) in dataset.sequences.iter().enumerate() {
            if !keep_user[u] {
                continue;
            }
            for &it in &seq.items {
                if keep_item[it as usize] {
                    user_counts[u] += 1;
                    item_counts[it as usize] += 1;
                }
            }
        }
        for u in 0..dataset.num_users {
            if keep_user[u] && user_counts[u] < k_user {
                keep_user[u] = false;
                changed = true;
            }
        }
        for it in 1..=dataset.num_items {
            if keep_item[it] && item_counts[it] < k_item {
                keep_item[it] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Dense remap of surviving items (1-based) and users.
    let mut item_map: HashMap<ItemId, ItemId> = HashMap::new();
    let mut next_item: ItemId = 1;
    for it in 1..=dataset.num_items {
        if keep_item[it] {
            item_map.insert(it as ItemId, next_item);
            next_item += 1;
        }
    }
    let mut sequences = Vec::new();
    for (u, seq) in dataset.sequences.iter().enumerate() {
        if !keep_user[u] {
            continue;
        }
        let mut new_seq = Sequence::new();
        for (&it, &b) in seq.items.iter().zip(seq.behaviors.iter()) {
            if let Some(&mapped) = item_map.get(&it) {
                new_seq.push(mapped, b);
            }
        }
        if !new_seq.is_empty() {
            sequences.push(new_seq);
        }
    }
    Dataset {
        name: dataset.name.clone(),
        num_users: sequences.len(),
        num_items: (next_item - 1) as usize,
        behaviors: dataset.behaviors.clone(),
        target_behavior: dataset.target_behavior,
        sequences,
    }
}

/// One training example: predict `target` (a target-behavior item) from the
/// multi-behavior `history` strictly before it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainInstance {
    pub user: UserId,
    pub history: Sequence,
    pub target: ItemId,
}

/// One ranking-evaluation example (validation or test).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalInstance {
    pub user: UserId,
    pub history: Sequence,
    pub target: ItemId,
}

/// Output of the leave-one-out protocol.
#[derive(Clone, Debug)]
pub struct Split {
    pub train: Vec<TrainInstance>,
    pub val: Vec<EvalInstance>,
    pub test: Vec<EvalInstance>,
    /// Per-user full training history (events before the validation
    /// target), used by non-parametric baselines (POP, ItemKNN).
    pub train_histories: Vec<(UserId, Sequence)>,
    pub num_items: usize,
    pub target_behavior: Behavior,
}

/// Split options.
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Keep at most this many most-recent events in any history.
    pub max_seq_len: usize,
    /// Users need at least this many target-behavior events to contribute
    /// val/test instances (the standard is 3: ≥1 train + 1 val + 1 test).
    pub min_target_events: usize,
    /// Cap on per-user training instances (most recent kept) to bound
    /// epoch cost; `usize::MAX` disables.
    pub max_train_per_user: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            max_seq_len: 50,
            min_target_events: 3,
            max_train_per_user: 8,
        }
    }
}

/// Chronological leave-one-out:
/// - the **last** target-behavior event of each user is the test target;
/// - the **second-to-last** is the validation target;
/// - every earlier target-behavior event yields a training instance.
///
/// Histories always contain *all* behaviors before the target event and are
/// truncated to the most recent `max_seq_len` events.
pub fn leave_one_out(dataset: &Dataset, config: &SplitConfig) -> Split {
    let target = dataset.target_behavior;
    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    let mut train_histories = Vec::new();

    for (u, seq) in dataset.sequences.iter().enumerate() {
        let user = u as UserId;
        let target_positions = seq.positions_of(target);
        if target_positions.len() < config.min_target_events {
            // Not enough signal to hold out; keep all events as training
            // instances (if ≥1 target and non-empty history).
            for &pos in &target_positions {
                if pos == 0 {
                    continue;
                }
                train.push(TrainInstance {
                    user,
                    history: history_before(seq, pos, config.max_seq_len),
                    target: seq.items[pos],
                });
            }
            if !target_positions.is_empty() {
                let last = *target_positions.last().unwrap();
                train_histories.push((user, history_before(seq, last + 1, config.max_seq_len)));
            }
            continue;
        }
        let test_pos = *target_positions.last().unwrap();
        let val_pos = target_positions[target_positions.len() - 2];

        let mut user_train: Vec<TrainInstance> = Vec::new();
        for &pos in &target_positions[..target_positions.len() - 2] {
            if pos == 0 {
                continue;
            }
            user_train.push(TrainInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        if user_train.len() > config.max_train_per_user {
            let skip = user_train.len() - config.max_train_per_user;
            user_train.drain(..skip);
        }
        train.extend(user_train);

        if val_pos > 0 {
            val.push(EvalInstance {
                user,
                history: history_before(seq, val_pos, config.max_seq_len),
                target: seq.items[val_pos],
            });
        }
        test.push(EvalInstance {
            user,
            history: history_before(seq, test_pos, config.max_seq_len),
            target: seq.items[test_pos],
        });
        train_histories.push((user, history_before(seq, val_pos, config.max_seq_len)));
    }

    Split {
        train,
        val,
        test,
        train_histories,
        num_items: dataset.num_items,
        target_behavior: target,
    }
}

/// The multi-behavior history strictly before event index `pos`, truncated
/// to the last `max_len` events.
fn history_before(seq: &Sequence, pos: usize, max_len: usize) -> Sequence {
    Sequence {
        items: seq.items[..pos].to_vec(),
        behaviors: seq.behaviors[..pos].to_vec(),
    }
    .truncate_to_recent(max_len)
}

/// Global temporal split: per user, the first `1 - val_frac - test_frac`
/// fraction of target-behavior events trains, the next `val_frac` fraction
/// validates, and the remainder tests — the alternative protocol to
/// leave-one-out, closer to production retraining cadence (no per-user
/// single holdout; late events are never used as training history for
/// earlier targets).
///
/// Fractions apply to each user's own timeline, which approximates a
/// global time cut when user activity spans the log uniformly (true for
/// the synthetic generator).
pub fn temporal_split(
    dataset: &Dataset,
    config: &SplitConfig,
    val_frac: f64,
    test_frac: f64,
) -> Split {
    assert!(val_frac >= 0.0 && test_frac > 0.0 && val_frac + test_frac < 1.0);
    let target = dataset.target_behavior;
    let mut train = Vec::new();
    let mut val = Vec::new();
    let mut test = Vec::new();
    let mut train_histories = Vec::new();

    for (u, seq) in dataset.sequences.iter().enumerate() {
        let user = u as UserId;
        let positions = seq.positions_of(target);
        if positions.len() < config.min_target_events {
            continue;
        }
        let n = positions.len();
        let test_start = ((n as f64) * (1.0 - test_frac)).floor() as usize;
        let val_start = ((n as f64) * (1.0 - test_frac - val_frac)).floor() as usize;
        let val_start = val_start.min(test_start).max(1); // ≥1 training target
        let test_start = test_start.clamp(val_start, n - 1);

        let mut user_train = Vec::new();
        for &pos in &positions[..val_start] {
            if pos == 0 {
                continue;
            }
            user_train.push(TrainInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        if user_train.len() > config.max_train_per_user {
            let skip = user_train.len() - config.max_train_per_user;
            user_train.drain(..skip);
        }
        train.extend(user_train);
        for &pos in &positions[val_start..test_start] {
            val.push(EvalInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        for &pos in &positions[test_start..] {
            test.push(EvalInstance {
                user,
                history: history_before(seq, pos, config.max_seq_len),
                target: seq.items[pos],
            });
        }
        let boundary = positions[val_start];
        train_histories.push((user, history_before(seq, boundary, config.max_seq_len)));
    }

    Split {
        train,
        val,
        test,
        train_histories,
        num_items: dataset.num_items,
        target_behavior: target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn build_seq(events: &[(ItemId, Behavior)]) -> Sequence {
        let mut s = Sequence::new();
        for &(i, b) in events {
            s.push(i, b);
        }
        s
    }

    fn toy_dataset() -> Dataset {
        use Behavior::*;
        Dataset {
            name: "toy".into(),
            num_users: 2,
            num_items: 6,
            behaviors: vec![Click, Purchase],
            target_behavior: Purchase,
            sequences: vec![
                build_seq(&[
                    (1, Click),
                    (1, Purchase),
                    (2, Click),
                    (3, Click),
                    (3, Purchase),
                    (4, Click),
                    (4, Purchase),
                    (5, Click),
                    (5, Purchase),
                ]),
                build_seq(&[(2, Click), (2, Purchase), (3, Click)]),
            ],
        }
    }

    #[test]
    fn loo_assigns_last_to_test_second_last_to_val() {
        let split = leave_one_out(&toy_dataset(), &SplitConfig::default());
        // User 0 has 4 purchases (1,3,4,5): test=5, val=4, train targets {1,3}.
        assert_eq!(split.test.len(), 1);
        assert_eq!(split.test[0].target, 5);
        assert_eq!(split.val[0].target, 4);
        let train_targets: Vec<ItemId> = split
            .train
            .iter()
            .filter(|t| t.user == 0)
            .map(|t| t.target)
            .collect();
        assert_eq!(train_targets, vec![1, 3]);
    }

    #[test]
    fn histories_are_strictly_before_target() {
        let split = leave_one_out(&toy_dataset(), &SplitConfig::default());
        let test = &split.test[0];
        // History before the last purchase of item 5 contains the click on 5.
        assert_eq!(*test.history.items.last().unwrap(), 5);
        assert_eq!(*test.history.behaviors.last().unwrap(), Behavior::Click);
        // And does not contain the target event itself.
        assert_eq!(test.history.len(), 8);
    }

    #[test]
    fn short_users_stay_in_training_only() {
        let split = leave_one_out(&toy_dataset(), &SplitConfig::default());
        // User 1 has a single purchase: no val/test, 1 training instance.
        assert!(split.test.iter().all(|t| t.user == 0));
        assert!(split.val.iter().all(|t| t.user == 0));
        let u1: Vec<_> = split.train.iter().filter(|t| t.user == 1).collect();
        assert_eq!(u1.len(), 1);
        assert_eq!(u1[0].target, 2);
    }

    #[test]
    fn max_seq_len_truncates() {
        let cfg = SplitConfig {
            max_seq_len: 2,
            ..SplitConfig::default()
        };
        let split = leave_one_out(&toy_dataset(), &cfg);
        assert!(split.test[0].history.len() <= 2);
    }

    #[test]
    fn max_train_per_user_caps_and_keeps_recent() {
        let cfg = SplitConfig {
            max_train_per_user: 1,
            ..SplitConfig::default()
        };
        let split = leave_one_out(&toy_dataset(), &cfg);
        let u0: Vec<_> = split.train.iter().filter(|t| t.user == 0).collect();
        assert_eq!(u0.len(), 1);
        assert_eq!(u0[0].target, 3); // the more recent of {1, 3}
    }

    #[test]
    fn k_core_removes_sparse_and_remaps() {
        let d = toy_dataset();
        let filtered = k_core(&d, 4, 2);
        filtered.validate().unwrap();
        // User 1 (3 events) is removed.
        assert_eq!(filtered.num_users, 1);
        // All item ids dense in 1..=num_items.
        for seq in &filtered.sequences {
            for &it in &seq.items {
                assert!(it >= 1 && it as usize <= filtered.num_items);
            }
        }
    }

    #[test]
    fn k_core_is_idempotent() {
        let g = SyntheticConfig::taobao_like(11).scaled(0.1).generate();
        let once = k_core(&g.dataset, 5, 3);
        let twice = k_core(&once, 5, 3);
        assert_eq!(once.num_users, twice.num_users);
        assert_eq!(once.num_items, twice.num_items);
        assert_eq!(once.num_interactions(), twice.num_interactions());
    }

    #[test]
    fn temporal_split_ordering_invariants() {
        let g = SyntheticConfig::taobao_like(14).scaled(0.1).generate();
        let split = temporal_split(&g.dataset, &SplitConfig::default(), 0.1, 0.2);
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
        // Multiple test instances per user are allowed; the test set must
        // be larger than the leave-one-out one for 20% test fraction.
        let loo = leave_one_out(&g.dataset, &SplitConfig::default());
        assert!(split.test.len() >= loo.test.len() / 2);
        // Every history respects max_seq_len and is non-empty.
        for inst in split.test.iter().chain(split.val.iter()) {
            assert!(!inst.history.is_empty());
            assert!(inst.history.len() <= 50);
        }
    }

    #[test]
    fn temporal_split_train_strictly_precedes_test_per_user() {
        let g = SyntheticConfig::yelp_like(15).scaled(0.1).generate();
        let cfg = SplitConfig {
            max_seq_len: usize::MAX >> 1,
            ..SplitConfig::default()
        };
        let split = temporal_split(&g.dataset, &cfg, 0.1, 0.2);
        // For each user: max train history length < min test history
        // length (histories are prefixes, so length orders events in time).
        use std::collections::HashMap;
        let mut max_train: HashMap<u32, usize> = HashMap::new();
        for t in &split.train {
            let e = max_train.entry(t.user).or_insert(0);
            *e = (*e).max(t.history.len());
        }
        for t in &split.test {
            if let Some(&mt) = max_train.get(&t.user) {
                assert!(
                    t.history.len() >= mt,
                    "test event earlier than a training event for user {}",
                    t.user
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn temporal_split_rejects_bad_fractions() {
        let g = SyntheticConfig::yelp_like(16).scaled(0.05).generate();
        temporal_split(&g.dataset, &SplitConfig::default(), 0.6, 0.6);
    }

    #[test]
    fn split_on_synthetic_covers_most_users() {
        let g = SyntheticConfig::taobao_like(13).scaled(0.15).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        assert!(!split.train.is_empty());
        assert!(split.test.len() > g.dataset.num_users / 2);
        assert_eq!(split.val.len(), split.test.len());
        // Eval targets are valid items.
        for inst in split.test.iter().chain(split.val.iter()) {
            assert!(inst.target >= 1 && inst.target as usize <= split.num_items);
            assert!(!inst.history.is_empty());
        }
    }
}
