//! Core data types for multi-behavior interaction logs.

use serde::{Deserialize, Serialize};

/// User identifier (dense, `0..num_users`).
pub type UserId = u32;

/// Item identifier. **Id 0 is reserved for padding**; real items are
/// `1..=num_items`.
pub type ItemId = u32;

/// The behavior taxonomy used across the workspace, ordered by "depth"
/// (how strong a preference signal the behavior carries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Behavior {
    /// Shallow, high-volume, noisy implicit feedback.
    Click,
    /// Add-to-cart (e-commerce) or equivalent mid-funnel action.
    Cart,
    /// Favorite / collect: explicit, low-noise.
    Favorite,
    /// Purchase: the deepest conversion signal.
    Purchase,
}

impl Behavior {
    /// All behaviors in funnel order.
    pub const ALL: [Behavior; 4] = [
        Behavior::Click,
        Behavior::Cart,
        Behavior::Favorite,
        Behavior::Purchase,
    ];

    /// Dense index used for behavior embeddings (padding uses index
    /// [`Behavior::PAD_INDEX`]).
    pub fn index(self) -> usize {
        match self {
            Behavior::Click => 1,
            Behavior::Cart => 2,
            Behavior::Favorite => 3,
            Behavior::Purchase => 4,
        }
    }

    /// Inverse of [`Behavior::index`]: decodes the dense behavior code used
    /// by embeddings and by the `.mbds` on-disk column ([`crate::format`]).
    /// Returns `None` for [`Behavior::PAD_INDEX`] and out-of-range codes.
    pub fn from_index(index: usize) -> Option<Behavior> {
        match index {
            1 => Some(Behavior::Click),
            2 => Some(Behavior::Cart),
            3 => Some(Behavior::Favorite),
            4 => Some(Behavior::Purchase),
            _ => None,
        }
    }

    /// Embedding index reserved for padded positions.
    pub const PAD_INDEX: usize = 0;

    /// Size of a behavior embedding table covering all behaviors + padding.
    pub const VOCAB: usize = 5;

    /// Funnel depth (higher = deeper/cleaner signal).
    pub fn depth(self) -> usize {
        match self {
            Behavior::Click => 0,
            Behavior::Cart => 1,
            Behavior::Favorite => 2,
            Behavior::Purchase => 3,
        }
    }

    /// Parses the TSV token used by [`crate::io`].
    pub fn from_token(tok: &str) -> Option<Behavior> {
        match tok {
            "click" => Some(Behavior::Click),
            "cart" => Some(Behavior::Cart),
            "favorite" | "fav" => Some(Behavior::Favorite),
            "purchase" | "buy" => Some(Behavior::Purchase),
            _ => None,
        }
    }

    /// TSV token.
    pub fn token(self) -> &'static str {
        match self {
            Behavior::Click => "click",
            Behavior::Cart => "cart",
            Behavior::Favorite => "favorite",
            Behavior::Purchase => "purchase",
        }
    }
}

/// One logged user–item event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// Dense user id.
    pub user: UserId,
    /// Dense item id (`1..=num_items`; 0 is reserved for padding).
    pub item: ItemId,
    /// Behavior type of the event.
    pub behavior: Behavior,
    /// Event time (unix seconds or any monotone per-user ordering key).
    pub timestamp: i64,
}

/// A time-ordered multi-behavior event sequence (parallel arrays).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    /// Item of each event, in time order.
    pub items: Vec<ItemId>,
    /// Behavior of each event, parallel to `items`.
    pub behaviors: Vec<Behavior>,
}

impl Sequence {
    /// Empty sequence.
    pub fn new() -> Self {
        Sequence::default()
    }

    /// Appends one event.
    pub fn push(&mut self, item: ItemId, behavior: Behavior) {
        self.items.push(item);
        self.behaviors.push(behavior);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the sequence holds no events.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Events with the given behavior, in order.
    pub fn filter_behavior(&self, behavior: Behavior) -> Sequence {
        let mut out = Sequence::new();
        for (&it, &b) in self.items.iter().zip(self.behaviors.iter()) {
            if b == behavior {
                out.push(it, b);
            }
        }
        out
    }

    /// Keeps only the last `n` events.
    pub fn truncate_to_recent(&self, n: usize) -> Sequence {
        let start = self.len().saturating_sub(n);
        Sequence {
            items: self.items[start..].to_vec(),
            behaviors: self.behaviors[start..].to_vec(),
        }
    }

    /// Positions (indices) whose behavior equals `behavior`.
    pub fn positions_of(&self, behavior: Behavior) -> Vec<usize> {
        self.behaviors
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == behavior).then_some(i))
            .collect()
    }
}

/// A full multi-behavior dataset: one sequence per user.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (typically the source file stem).
    pub name: String,
    /// Number of users; user ids are `0..num_users`.
    pub num_users: usize,
    /// Number of real items; item ids are `1..=num_items` (0 = padding).
    pub num_items: usize,
    /// Behaviors present, in funnel order.
    pub behaviors: Vec<Behavior>,
    /// The behavior whose next item the task predicts.
    pub target_behavior: Behavior,
    /// Per-user time-ordered event sequences, indexed by `UserId`.
    pub sequences: Vec<Sequence>,
}

impl Dataset {
    /// Total number of events.
    pub fn num_interactions(&self) -> usize {
        self.sequences.iter().map(Sequence::len).sum()
    }

    /// Number of events with the given behavior.
    pub fn count_behavior(&self, behavior: Behavior) -> usize {
        self.sequences
            .iter()
            .map(|s| s.behaviors.iter().filter(|&&b| b == behavior).count())
            .sum()
    }

    /// Average events per user (all behaviors).
    pub fn avg_seq_len(&self) -> f64 {
        if self.num_users == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / self.num_users as f64
    }

    /// Density: interactions / (users × items).
    pub fn density(&self) -> f64 {
        let cells = self.num_users as f64 * self.num_items as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.num_interactions() as f64 / cells
        }
    }

    /// Validates the structural invariants: item ids in range, behaviors
    /// from the declared set, one sequence per user. Returns a description
    /// of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.sequences.len() != self.num_users {
            return Err(format!(
                "expected {} sequences, found {}",
                self.num_users,
                self.sequences.len()
            ));
        }
        if !self.behaviors.contains(&self.target_behavior) {
            return Err("target behavior not in behavior set".to_string());
        }
        for (u, seq) in self.sequences.iter().enumerate() {
            if seq.items.len() != seq.behaviors.len() {
                return Err(format!("user {u}: ragged sequence"));
            }
            for &it in &seq.items {
                if it == 0 || it as usize > self.num_items {
                    return Err(format!("user {u}: item id {it} out of range"));
                }
            }
            for &b in &seq.behaviors {
                if !self.behaviors.contains(&b) {
                    return Err(format!("user {u}: undeclared behavior {b:?}"));
                }
            }
        }
        Ok(())
    }
}

/// Summary statistics for Table 1 of the experiment suite.
#[derive(Clone, Debug, Serialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub users: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Total event count across all behaviors.
    pub interactions: usize,
    /// `(behavior token, event count)` pairs in funnel order.
    pub per_behavior: Vec<(String, usize)>,
    /// Mean events per user.
    pub avg_seq_len: f64,
    /// Interactions / (users × items).
    pub density: f64,
}

impl Dataset {
    /// Per-item interaction counts (index 0 unused).
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_items + 1];
        for seq in &self.sequences {
            for &it in &seq.items {
                counts[it as usize] += 1;
            }
        }
        counts
    }

    /// Gini coefficient of item popularity (0 = uniform, → 1 = extreme
    /// concentration). Real interaction logs sit around 0.6–0.9; this is
    /// the realism check for the synthetic generator's Zipf process.
    pub fn popularity_gini(&self) -> f64 {
        let mut counts: Vec<f64> = self.item_counts()[1..]
            .iter()
            .map(|&c| c as f64)
            .collect();
        counts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = counts.len() as f64;
        let total: f64 = counts.iter().sum();
        if n == 0.0 || total == 0.0 {
            return 0.0;
        }
        // Gini via the sorted-rank formula.
        let weighted: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c)
            .sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }

    /// Histogram of sequence lengths over the given bucket boundaries
    /// (same semantics as `metrics::aggregate::bucket_by`).
    pub fn seq_len_histogram(&self, boundaries: &[usize]) -> Vec<usize> {
        let mut buckets = vec![0usize; boundaries.len() + 1];
        for seq in &self.sequences {
            let len = seq.len();
            let b = boundaries
                .iter()
                .position(|&x| len <= x)
                .unwrap_or(boundaries.len());
            buckets[b] += 1;
        }
        buckets
    }

    /// Summary statistics (the Table-1 row for this dataset).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            users: self.num_users,
            items: self.num_items,
            interactions: self.num_interactions(),
            per_behavior: self
                .behaviors
                .iter()
                .map(|&b| (b.token().to_string(), self.count_behavior(b)))
                .collect(),
            avg_seq_len: self.avg_seq_len(),
            density: self.density(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut s0 = Sequence::new();
        s0.push(1, Behavior::Click);
        s0.push(2, Behavior::Purchase);
        let mut s1 = Sequence::new();
        s1.push(2, Behavior::Click);
        Dataset {
            name: "tiny".into(),
            num_users: 2,
            num_items: 2,
            behaviors: vec![Behavior::Click, Behavior::Purchase],
            target_behavior: Behavior::Purchase,
            sequences: vec![s0, s1],
        }
    }

    #[test]
    fn behavior_indices_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for b in Behavior::ALL {
            let i = b.index();
            assert_ne!(i, Behavior::PAD_INDEX);
            assert!(i < Behavior::VOCAB);
            assert!(seen.insert(i));
        }
    }

    #[test]
    fn behavior_token_roundtrip() {
        for b in Behavior::ALL {
            assert_eq!(Behavior::from_token(b.token()), Some(b));
        }
        assert_eq!(Behavior::from_token("nope"), None);
    }

    #[test]
    fn depth_increases_along_funnel() {
        let depths: Vec<usize> = Behavior::ALL.iter().map(|b| b.depth()).collect();
        assert!(depths.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sequence_filter_and_positions() {
        let mut s = Sequence::new();
        s.push(1, Behavior::Click);
        s.push(2, Behavior::Purchase);
        s.push(3, Behavior::Click);
        let clicks = s.filter_behavior(Behavior::Click);
        assert_eq!(clicks.items, vec![1, 3]);
        assert_eq!(s.positions_of(Behavior::Purchase), vec![1]);
    }

    #[test]
    fn truncate_keeps_most_recent() {
        let mut s = Sequence::new();
        for i in 1..=5 {
            s.push(i, Behavior::Click);
        }
        let t = s.truncate_to_recent(2);
        assert_eq!(t.items, vec![4, 5]);
        assert_eq!(s.truncate_to_recent(10).len(), 5);
    }

    #[test]
    fn dataset_counts() {
        let d = tiny_dataset();
        assert_eq!(d.num_interactions(), 3);
        assert_eq!(d.count_behavior(Behavior::Click), 2);
        assert_eq!(d.count_behavior(Behavior::Purchase), 1);
        assert!((d.avg_seq_len() - 1.5).abs() < 1e-9);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_item() {
        let mut d = tiny_dataset();
        d.sequences[0].items[0] = 99;
        assert!(d.validate().is_err());
        d.sequences[0].items[0] = 0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_undeclared_behavior() {
        let mut d = tiny_dataset();
        d.sequences[1].behaviors[0] = Behavior::Cart;
        assert!(d.validate().is_err());
    }

    #[test]
    fn item_counts_match_events() {
        let d = tiny_dataset();
        let counts = d.item_counts();
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts.iter().sum::<usize>(), d.num_interactions());
    }

    #[test]
    fn gini_zero_for_uniform_popularity() {
        let mut s = Sequence::new();
        s.push(1, Behavior::Click);
        s.push(2, Behavior::Click);
        let d = Dataset {
            name: "uniform".into(),
            num_users: 1,
            num_items: 2,
            behaviors: vec![Behavior::Click],
            target_behavior: Behavior::Click,
            sequences: vec![s],
        };
        assert!(d.popularity_gini().abs() < 1e-9);
    }

    #[test]
    fn gini_high_for_concentrated_popularity() {
        let mut s = Sequence::new();
        for _ in 0..99 {
            s.push(1, Behavior::Click);
        }
        s.push(2, Behavior::Click);
        let d = Dataset {
            name: "skewed".into(),
            num_users: 1,
            num_items: 2,
            behaviors: vec![Behavior::Click],
            target_behavior: Behavior::Click,
            sequences: vec![s],
        };
        assert!(d.popularity_gini() > 0.45, "gini {}", d.popularity_gini());
    }

    #[test]
    fn seq_len_histogram_partitions_users() {
        let d = tiny_dataset();
        let hist = d.seq_len_histogram(&[1, 5]);
        assert_eq!(hist.iter().sum::<usize>(), d.num_users);
        assert_eq!(hist, vec![1, 1, 0]); // lens 2 and 1
    }

    #[test]
    fn stats_shape() {
        let st = tiny_dataset().stats();
        assert_eq!(st.users, 2);
        assert_eq!(st.per_behavior.len(), 2);
        assert!(st.density > 0.0);
    }
}
