//! Stochastic sequence augmentations for self-supervised contrastive
//! learning (the CL4SRec family, extended with a behavior-aware op).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::types::{Behavior, Sequence};

/// An augmentation operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AugmentOp {
    /// Keep a random contiguous window covering `ratio` of the sequence.
    Crop {
        /// Fraction of the sequence the kept window covers.
        ratio: f64,
    },
    /// Drop each event independently with probability `ratio` (item
    /// masking realized as deletion, which avoids a dedicated mask token).
    Mask {
        /// Per-event drop probability.
        ratio: f64,
    },
    /// Shuffle a random contiguous window covering `ratio` of the sequence.
    Reorder {
        /// Fraction of the sequence the shuffled window covers.
        ratio: f64,
    },
    /// Re-label each *shallow* (Click) event's behavior as a random deeper
    /// behavior with probability `ratio` — a behavior-level augmentation
    /// unique to the multi-behavior setting.
    BehaviorSubstitute {
        /// Per-click substitution probability.
        ratio: f64,
        /// The deeper behavior substituted in.
        deeper: Behavior,
    },
}

impl AugmentOp {
    /// Applies the operator. The result is never empty: degenerate draws
    /// fall back to the original sequence.
    pub fn apply(&self, seq: &Sequence, rng: &mut StdRng) -> Sequence {
        if seq.len() <= 1 {
            return seq.clone();
        }
        match *self {
            AugmentOp::Crop { ratio } => crop(seq, ratio, rng),
            AugmentOp::Mask { ratio } => mask(seq, ratio, rng),
            AugmentOp::Reorder { ratio } => reorder(seq, ratio, rng),
            AugmentOp::BehaviorSubstitute { ratio, deeper } => {
                behavior_substitute(seq, ratio, deeper, rng)
            }
        }
    }
}

/// The standard three-op palette with conventional ratios.
pub fn default_ops() -> Vec<AugmentOp> {
    vec![
        AugmentOp::Crop { ratio: 0.6 },
        AugmentOp::Mask { ratio: 0.3 },
        AugmentOp::Reorder { ratio: 0.5 },
    ]
}

/// Samples one of `ops` uniformly and applies it.
pub fn random_augment(seq: &Sequence, ops: &[AugmentOp], rng: &mut StdRng) -> Sequence {
    assert!(!ops.is_empty(), "no augmentation ops provided");
    let op = ops[rng.gen_range(0..ops.len())];
    op.apply(seq, rng)
}

fn crop(seq: &Sequence, ratio: f64, rng: &mut StdRng) -> Sequence {
    let keep = ((seq.len() as f64 * ratio).round() as usize).clamp(1, seq.len());
    let start = rng.gen_range(0..=(seq.len() - keep));
    Sequence {
        items: seq.items[start..start + keep].to_vec(),
        behaviors: seq.behaviors[start..start + keep].to_vec(),
    }
}

fn mask(seq: &Sequence, ratio: f64, rng: &mut StdRng) -> Sequence {
    let mut out = Sequence::new();
    for (&it, &b) in seq.items.iter().zip(seq.behaviors.iter()) {
        if rng.gen::<f64>() >= ratio {
            out.push(it, b);
        }
    }
    if out.is_empty() {
        seq.clone()
    } else {
        out
    }
}

fn reorder(seq: &Sequence, ratio: f64, rng: &mut StdRng) -> Sequence {
    let window = ((seq.len() as f64 * ratio).round() as usize).clamp(1, seq.len());
    let start = rng.gen_range(0..=(seq.len() - window));
    let mut idx: Vec<usize> = (start..start + window).collect();
    idx.shuffle(rng);
    let mut out = seq.clone();
    for (k, &src) in idx.iter().enumerate() {
        out.items[start + k] = seq.items[src];
        out.behaviors[start + k] = seq.behaviors[src];
    }
    out
}

fn behavior_substitute(seq: &Sequence, ratio: f64, deeper: Behavior, rng: &mut StdRng) -> Sequence {
    let mut out = seq.clone();
    for b in out.behaviors.iter_mut() {
        if *b == Behavior::Click && rng.gen::<f64>() < ratio {
            *b = deeper;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_seq(n: usize) -> Sequence {
        let mut s = Sequence::new();
        for i in 1..=n {
            let b = if i % 3 == 0 {
                Behavior::Purchase
            } else {
                Behavior::Click
            };
            s.push(i as u32, b);
        }
        s
    }

    #[test]
    fn crop_keeps_contiguous_window() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = sample_seq(10);
        let out = AugmentOp::Crop { ratio: 0.5 }.apply(&seq, &mut rng);
        assert_eq!(out.len(), 5);
        // Items must be consecutive in the original.
        let first = out.items[0];
        for (k, &it) in out.items.iter().enumerate() {
            assert_eq!(it, first + k as u32);
        }
    }

    #[test]
    fn mask_drops_roughly_ratio() {
        let mut rng = StdRng::seed_from_u64(2);
        let seq = sample_seq(1000);
        let out = AugmentOp::Mask { ratio: 0.3 }.apply(&seq, &mut rng);
        let kept = out.len() as f64 / 1000.0;
        assert!((kept - 0.7).abs() < 0.06, "kept {kept}");
    }

    #[test]
    fn mask_never_empties() {
        let mut rng = StdRng::seed_from_u64(3);
        let seq = sample_seq(2);
        for _ in 0..50 {
            let out = AugmentOp::Mask { ratio: 0.99 }.apply(&seq, &mut rng);
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn reorder_is_permutation_of_items() {
        let mut rng = StdRng::seed_from_u64(4);
        let seq = sample_seq(12);
        let out = AugmentOp::Reorder { ratio: 0.5 }.apply(&seq, &mut rng);
        assert_eq!(out.len(), seq.len());
        let mut a = seq.items.clone();
        let mut b = out.items.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn reorder_keeps_item_behavior_pairing() {
        let mut rng = StdRng::seed_from_u64(5);
        let seq = sample_seq(12);
        let out = AugmentOp::Reorder { ratio: 1.0 }.apply(&seq, &mut rng);
        for (&it, &b) in out.items.iter().zip(out.behaviors.iter()) {
            // In sample_seq, behavior is a function of the item id.
            let expect = if it % 3 == 0 {
                Behavior::Purchase
            } else {
                Behavior::Click
            };
            assert_eq!(b, expect);
        }
    }

    #[test]
    fn behavior_substitute_only_touches_clicks() {
        let mut rng = StdRng::seed_from_u64(6);
        let seq = sample_seq(300);
        let out = AugmentOp::BehaviorSubstitute {
            ratio: 0.5,
            deeper: Behavior::Favorite,
        }
        .apply(&seq, &mut rng);
        assert_eq!(out.items, seq.items);
        let mut substituted = 0;
        for (&before, &after) in seq.behaviors.iter().zip(out.behaviors.iter()) {
            match before {
                Behavior::Click => {
                    assert!(after == Behavior::Click || after == Behavior::Favorite);
                    if after == Behavior::Favorite {
                        substituted += 1;
                    }
                }
                other => assert_eq!(after, other),
            }
        }
        assert!(substituted > 0);
    }

    #[test]
    fn singleton_sequences_returned_unchanged() {
        let mut rng = StdRng::seed_from_u64(7);
        let seq = sample_seq(1);
        for op in default_ops() {
            assert_eq!(op.apply(&seq, &mut rng), seq);
        }
    }

    #[test]
    fn random_augment_uses_all_ops_eventually() {
        let mut rng = StdRng::seed_from_u64(8);
        let seq = sample_seq(20);
        let ops = default_ops();
        let mut saw_shorter = false;
        let mut saw_same_len = false;
        for _ in 0..100 {
            let out = random_augment(&seq, &ops, &mut rng);
            if out.len() < seq.len() {
                saw_shorter = true;
            }
            if out.len() == seq.len() {
                saw_same_len = true;
            }
        }
        assert!(saw_shorter && saw_same_len);
    }
}
