//! `.mbds` — the mmap'd binary columnar dataset format.
//!
//! This module implements the on-disk "data substrate" described in
//! DESIGN.md §16: a compact, versioned, little-endian columnar encoding of a
//! preprocessed [`Dataset`] that loads in O(1) via `mmap(2)` instead of
//! re-parsing (and re-k-coring) a TSV log on every run. The layout is four
//! column sections behind a 64-byte header:
//!
//! ```text
//! header | name | user_offsets (u64 × U+1) | items (u32 × E)
//!        | behaviors (u8 × E) | timestamps (i64 × E)
//! ```
//!
//! Every section starts on an 8-byte boundary (zero padding in between), so
//! the typed column views handed out by [`MbdsFile`] are plain aligned
//! reinterpret-casts of the mapping — no copies, no decoding pass.
//!
//! Validation mirrors the `.ivf` index loader: [`MbdsFile::open`] fully
//! validates the file (magic, version, declared sizes vs. actual length,
//! offset monotonicity, item-id ranges, behavior codes) and rejects anything
//! suspect with a typed [`FormatError`] — callers are expected to
//! warn-and-degrade to the TSV path, never to trust a partially validated
//! mapping. A hostile or truncated file must produce an error, never UB.
//!
//! Writing goes through [`MbdsStreamWriter`], which buffers only O(users)
//! state (the offsets column) and streams the event columns through
//! temporary files, so TSV→`.mbds` conversion and synthetic generation stay
//! in bounded memory at 10M+ events. [`write_mbds`] is the convenience
//! wrapper for an already materialized [`Dataset`].
//!
//! `MBSSL_DATA_MMAP=off` (or `0` / `none`) disables the `mmap` fast path:
//! the file is then read into an owned, 8-byte-aligned buffer through the
//! same validation code. Non-unix targets always take the buffered path.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::types::{Behavior, Dataset, ItemId, Sequence};

/// Magic bytes at offset 0 of every `.mbds` file.
pub const MAGIC: &[u8; 8] = b"MBSSLDS\0";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes for version 1.
pub const HEADER_LEN: u64 = 64;

const ALIGN: u64 = 8;

/// Why a `.mbds` file was rejected. Mirrors the `.ivf` loader's rejection
/// modes so CLI consumers can warn-and-degrade uniformly.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// First 8 bytes are not [`MAGIC`] — not a `.mbds` file at all.
    BadMagic,
    /// Recognized file, but written by an incompatible format version.
    BadVersion(u32),
    /// File is shorter than its header-declared layout requires.
    Truncated {
        /// Bytes the declared layout requires.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Structurally invalid content (bad offsets, out-of-range ids,
    /// trailing bytes, …). The message names the first violation.
    Corrupt(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "io error: {e}"),
            FormatError::BadMagic => write!(f, "bad magic (not a .mbds file)"),
            FormatError::BadVersion(v) => {
                write!(f, "unsupported .mbds version {v} (supported: {VERSION})")
            }
            FormatError::Truncated { needed, actual } => {
                write!(f, "truncated: layout needs {needed} bytes, file has {actual}")
            }
            FormatError::Corrupt(msg) => write!(f, "corrupt: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// Whether the `mmap` fast path is enabled (`MBSSL_DATA_MMAP`, default on;
/// `off` / `0` / `none` fall back to an owned aligned buffer). Also governs
/// whether the CLI auto-discovers `.mbds` siblings next to TSV logs.
pub fn mmap_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("MBSSL_DATA_MMAP").as_deref(),
            Ok("off") | Ok("0") | Ok("none")
        )
    })
}

fn align_up(x: u64) -> Option<u64> {
    x.checked_add(ALIGN - 1).map(|v| v & !(ALIGN - 1))
}

/// Byte ranges of each section, derived purely from header counts.
struct Layout {
    name: (u64, u64),
    offsets: (u64, u64),
    items: (u64, u64),
    behaviors: (u64, u64),
    timestamps: (u64, u64),
    total: u64,
}

fn layout(num_users: u64, num_events: u64, name_len: u64) -> Result<Layout, FormatError> {
    let overflow = || FormatError::Corrupt("section sizes overflow u64".to_string());
    let mut pos = HEADER_LEN;
    let mut section = |len: u64| -> Result<(u64, u64), FormatError> {
        let start = pos;
        let end = start.checked_add(len).ok_or_else(overflow)?;
        pos = align_up(end).ok_or_else(overflow)?;
        Ok((start, end))
    };
    let name = section(name_len)?;
    let offsets_len = num_users
        .checked_add(1)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(overflow)?;
    let offsets = section(offsets_len)?;
    let items = section(num_events.checked_mul(4).ok_or_else(overflow)?)?;
    let behaviors = section(num_events)?;
    let timestamps = section(num_events.checked_mul(8).ok_or_else(overflow)?)?;
    // The file ends exactly at the end of the timestamps section — the final
    // section is NOT padded, so `total` may not be 8-aligned.
    Ok(Layout {
        name,
        offsets,
        items,
        behaviors,
        timestamps,
        total: timestamps.1,
    })
}

#[cfg(unix)]
mod sys {
    //! Minimal raw bindings to the two libc symbols we need. The workspace
    //! is zero-dependency, so there is no `libc` crate; `std` already links
    //! the platform libc on unix, making these `extern "C"` declarations
    //! resolve at link time.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// The bytes behind an open file: either a read-only private mapping or an
/// owned buffer. The owned buffer is backed by `Vec<u64>` so its base is
/// 8-aligned like a page-aligned mapping — the typed column views rely on
/// section starts being at least 4/8-aligned relative to an aligned base.
enum Backing {
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    Owned { buf: Vec<u64>, len: usize },
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never mutated after
// open; sharing immutable views across threads is sound.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mmap { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
            Backing::Owned { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    fn is_mmap(&self) -> bool {
        match self {
            #[cfg(unix)]
            Backing::Mmap { .. } => true,
            Backing::Owned { .. } => false,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mmap { ptr, len } = self {
            // SAFETY: ptr/len came from a successful mmap of exactly len.
            unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

fn read_owned(file: &mut File, len: u64) -> Result<Backing, FormatError> {
    let len_usize =
        usize::try_from(len).map_err(|_| FormatError::Corrupt("file too large".to_string()))?;
    let words = len_usize.div_ceil(8);
    let mut buf = vec![0u64; words];
    // SAFETY: the Vec<u64> allocation covers words*8 >= len bytes and u64 has
    // no invalid bit patterns, so filling it as raw bytes is sound.
    let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len_usize) };
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(dst)?;
    Ok(Backing::Owned { buf, len: len_usize })
}

#[cfg(unix)]
fn map_file(file: &File, len: u64) -> Result<Backing, FormatError> {
    use std::os::unix::io::AsRawFd;
    let len_usize =
        usize::try_from(len).map_err(|_| FormatError::Corrupt("file too large".to_string()))?;
    // SAFETY: fd is valid for the lifetime of the call; a failed map returns
    // MAP_FAILED which we turn into an error instead of dereferencing.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len_usize,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        return Err(FormatError::Io(io::Error::last_os_error()));
    }
    Ok(Backing::Mmap { ptr: ptr as *mut u8, len: len_usize })
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// An open, fully validated `.mbds` file exposing zero-copy column views.
///
/// All accessors are plain slices into the backing mapping; materializing a
/// heap [`Dataset`] is explicit via [`MbdsFile::to_dataset`]. Dropping the
/// handle unmaps the file.
pub struct MbdsFile {
    backing: Backing,
    name: String,
    num_users: usize,
    num_items: usize,
    num_events: usize,
    behaviors: Vec<Behavior>,
    target_behavior: Behavior,
    kcore: (u8, u8),
    offsets_at: usize,
    items_at: usize,
    behaviors_at: usize,
    timestamps_at: usize,
}

impl MbdsFile {
    /// Opens and fully validates a `.mbds` file. Uses `mmap` when
    /// [`mmap_enabled`] (unix only); otherwise reads the file into an
    /// aligned owned buffer. Any structural violation yields a typed
    /// [`FormatError`]; a returned handle is safe to index without further
    /// checks.
    pub fn open(path: &Path) -> Result<MbdsFile, FormatError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN {
            return Err(FormatError::Truncated { needed: HEADER_LEN, actual: file_len });
        }
        #[cfg(unix)]
        let backing = if mmap_enabled() {
            map_file(&file, file_len)?
        } else {
            read_owned(&mut file, file_len)?
        };
        #[cfg(not(unix))]
        let backing = read_owned(&mut file, file_len)?;
        Self::validate(backing, file_len)
    }

    fn validate(backing: Backing, file_len: u64) -> Result<MbdsFile, FormatError> {
        let b = backing.bytes();
        if &b[0..8] != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = read_u32(b, 8);
        if version != VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let header_len = read_u32(b, 12);
        if u64::from(header_len) != HEADER_LEN {
            return Err(FormatError::Corrupt(format!(
                "header_len {header_len}, expected {HEADER_LEN}"
            )));
        }
        let num_users = read_u64(b, 16);
        let num_items = read_u64(b, 24);
        let num_events = read_u64(b, 32);
        let target_code = b[40];
        let behavior_mask = b[41];
        let kcore = (b[42], b[43]);
        let name_len = u64::from(read_u32(b, 44));
        if b[48..64].iter().any(|&x| x != 0) {
            return Err(FormatError::Corrupt("reserved header bytes not zero".to_string()));
        }
        if num_items >= u64::from(u32::MAX) {
            return Err(FormatError::Corrupt(format!(
                "num_items {num_items} exceeds the u32 item-id space"
            )));
        }
        let lay = layout(num_users, num_events, name_len)?;
        if file_len < lay.total {
            return Err(FormatError::Truncated { needed: lay.total, actual: file_len });
        }
        if file_len > lay.total {
            return Err(FormatError::Corrupt(format!(
                "{} trailing bytes after the timestamps section",
                file_len - lay.total
            )));
        }
        // Decode the behavior set: one bit per dense behavior code - 1.
        if behavior_mask == 0 || behavior_mask & !0b1111 != 0 {
            return Err(FormatError::Corrupt(format!(
                "behavior mask {behavior_mask:#04x} invalid"
            )));
        }
        let behaviors: Vec<Behavior> = Behavior::ALL
            .iter()
            .copied()
            .filter(|bh| behavior_mask & (1 << (bh.index() - 1)) != 0)
            .collect();
        let target_behavior = Behavior::from_index(target_code as usize).ok_or_else(|| {
            FormatError::Corrupt(format!("target behavior code {target_code} invalid"))
        })?;
        if behavior_mask & (1 << (target_behavior.index() - 1)) == 0 {
            return Err(FormatError::Corrupt(format!(
                "target behavior {} not in the declared behavior set",
                target_behavior.token()
            )));
        }
        let name_bytes = &b[lay.name.0 as usize..lay.name.1 as usize];
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| FormatError::Corrupt("dataset name is not UTF-8".to_string()))?
            .to_string();
        // Inter-section padding must be zero (normative, keeps files
        // byte-reproducible).
        for (end, next) in [
            (lay.name.1, lay.offsets.0),
            (lay.offsets.1, lay.items.0),
            (lay.items.1, lay.behaviors.0),
            (lay.behaviors.1, lay.timestamps.0),
        ] {
            if b[end as usize..next as usize].iter().any(|&x| x != 0) {
                return Err(FormatError::Corrupt("nonzero section padding".to_string()));
            }
        }
        let this = MbdsFile {
            name,
            num_users: num_users as usize,
            num_items: num_items as usize,
            num_events: num_events as usize,
            behaviors,
            target_behavior,
            kcore,
            offsets_at: lay.offsets.0 as usize,
            items_at: lay.items.0 as usize,
            behaviors_at: lay.behaviors.0 as usize,
            timestamps_at: lay.timestamps.0 as usize,
            backing,
        };
        // Column-level validation: offsets monotone and spanning exactly
        // num_events; every item id in 1..=num_items; every behavior code in
        // the declared mask. One O(E) pass at open so accessors stay
        // check-free.
        let offsets = this.user_offsets();
        if offsets.first() != Some(&0) && this.num_users > 0 {
            return Err(FormatError::Corrupt("user_offsets[0] != 0".to_string()));
        }
        if this.num_users == 0 && offsets != [0] {
            return Err(FormatError::Corrupt("empty dataset with nonzero offsets".to_string()));
        }
        for w in offsets.windows(2) {
            if w[1] < w[0] {
                return Err(FormatError::Corrupt("user_offsets not monotone".to_string()));
            }
        }
        if *offsets.last().unwrap() != this.num_events as u64 {
            return Err(FormatError::Corrupt(format!(
                "user_offsets end at {} but num_events is {}",
                offsets.last().unwrap(),
                this.num_events
            )));
        }
        for (i, &it) in this.items().iter().enumerate() {
            if it == 0 || it as usize > this.num_items {
                return Err(FormatError::Corrupt(format!(
                    "event {i}: item id {it} out of range 1..={}",
                    this.num_items
                )));
            }
        }
        for (i, &code) in this.behavior_codes().iter().enumerate() {
            let ok = (1..=4).contains(&code) && behavior_mask & (1 << (code - 1)) != 0;
            if !ok {
                return Err(FormatError::Corrupt(format!(
                    "event {i}: behavior code {code} not in declared set"
                )));
            }
        }
        Ok(this)
    }

    /// Dataset name recorded at write time (typically the TSV file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of users; user ids are `0..num_users`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of real items; item ids are `1..=num_items`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total event count across all users.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Behaviors present, in funnel order (decoded from the header mask).
    pub fn behaviors(&self) -> &[Behavior] {
        &self.behaviors
    }

    /// The prediction-target behavior recorded at write time.
    pub fn target_behavior(&self) -> Behavior {
        self.target_behavior
    }

    /// The `(k_user, k_item)` k-core thresholds recorded at write time
    /// (header bytes 42/43), or `None` when the writer left them
    /// unspecified. Loaders that assume a particular preprocessing (the
    /// CLI's sibling auto-discovery expects the default 5/3-core) use this
    /// to detect a file converted with different thresholds.
    pub fn kcore_thresholds(&self) -> Option<(usize, usize)> {
        match self.kcore {
            (0, _) | (_, 0) => None,
            (ku, ki) => Some((ku as usize, ki as usize)),
        }
    }

    /// True when backed by an `mmap` mapping rather than an owned buffer.
    pub fn is_mmap(&self) -> bool {
        self.backing.is_mmap()
    }

    /// Total size of the backing file in bytes.
    pub fn file_len(&self) -> usize {
        self.backing.bytes().len()
    }

    fn cast_slice<T: Copy>(&self, at: usize, n: usize) -> &[T] {
        let b = self.backing.bytes();
        let bytes = &b[at..at + n * std::mem::size_of::<T>()];
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: the section start is 8-aligned relative to an 8-aligned
        // base (page-aligned mmap or Vec<u64>), the length was validated
        // against the file size at open, and T is a plain-old-data integer
        // type with no invalid bit patterns.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, n) }
    }

    /// The user-offsets column: `num_users + 1` monotone event indices;
    /// user `u`'s events are `items()[offsets[u]..offsets[u+1]]`.
    pub fn user_offsets(&self) -> &[u64] {
        self.cast_slice(self.offsets_at, self.num_users + 1)
    }

    /// The item-id column (`num_events` entries, each in `1..=num_items`).
    pub fn items(&self) -> &[ItemId] {
        self.cast_slice(self.items_at, self.num_events)
    }

    /// The raw behavior-code column (`num_events` entries, dense codes as
    /// produced by [`Behavior::index`]).
    pub fn behavior_codes(&self) -> &[u8] {
        let b = self.backing.bytes();
        &b[self.behaviors_at..self.behaviors_at + self.num_events]
    }

    /// The timestamps column (`num_events` i64 entries; per-user event
    /// index when the source had no real timestamps).
    pub fn timestamps(&self) -> &[i64] {
        self.cast_slice(self.timestamps_at, self.num_events)
    }

    /// Event range of one user within the column views.
    pub fn user_range(&self, user: usize) -> std::ops::Range<usize> {
        let offs = self.user_offsets();
        offs[user] as usize..offs[user + 1] as usize
    }

    /// Materializes a heap [`Dataset`] from the columns. `.mbds` files
    /// store already-preprocessed (k-cored, densely remapped) data, so no
    /// further preprocessing is applied on load.
    pub fn to_dataset(&self) -> Dataset {
        let items = self.items();
        let codes = self.behavior_codes();
        let offsets = self.user_offsets();
        let mut sequences = Vec::with_capacity(self.num_users);
        for u in 0..self.num_users {
            let r = offsets[u] as usize..offsets[u + 1] as usize;
            sequences.push(Sequence {
                items: items[r.clone()].to_vec(),
                behaviors: codes[r]
                    .iter()
                    .map(|&c| Behavior::from_index(c as usize).unwrap())
                    .collect(),
            });
        }
        Dataset {
            name: self.name.clone(),
            num_users: self.num_users,
            num_items: self.num_items,
            behaviors: self.behaviors.clone(),
            target_behavior: self.target_behavior,
            sequences,
        }
    }

    /// Summary statistics computed directly over the columns, without
    /// materializing a [`Dataset`]. O(E) time, O(items) memory.
    pub fn stats(&self) -> crate::types::DatasetStats {
        let mut per = [0usize; Behavior::VOCAB];
        for &c in self.behavior_codes() {
            per[c as usize] += 1;
        }
        let cells = self.num_users as f64 * self.num_items as f64;
        crate::types::DatasetStats {
            name: self.name.clone(),
            users: self.num_users,
            items: self.num_items,
            interactions: self.num_events,
            per_behavior: self
                .behaviors
                .iter()
                .map(|&bh| (bh.token().to_string(), per[bh.index()]))
                .collect(),
            avg_seq_len: if self.num_users == 0 {
                0.0
            } else {
                self.num_events as f64 / self.num_users as f64
            },
            density: if cells == 0.0 { 0.0 } else { self.num_events as f64 / cells },
        }
    }

    /// Gini coefficient of item popularity computed over the item column
    /// (same formula as [`Dataset::popularity_gini`]), O(items) memory.
    pub fn popularity_gini(&self) -> f64 {
        let mut counts = vec![0f64; self.num_items];
        for &it in self.items() {
            counts[it as usize - 1] += 1.0;
        }
        counts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = counts.len() as f64;
        let total: f64 = counts.iter().sum();
        if n == 0.0 || total == 0.0 {
            return 0.0;
        }
        let weighted: f64 =
            counts.iter().enumerate().map(|(i, &c)| (i as f64 + 1.0) * c).sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }
}

impl std::fmt::Debug for MbdsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MbdsFile")
            .field("name", &self.name)
            .field("num_users", &self.num_users)
            .field("num_items", &self.num_items)
            .field("num_events", &self.num_events)
            .field("behaviors", &self.behaviors)
            .field("target_behavior", &self.target_behavior)
            .field("backing", &if self.is_mmap() { "mmap" } else { "owned" })
            .finish()
    }
}

fn behavior_mask_of(behaviors: &[Behavior]) -> u8 {
    behaviors.iter().fold(0u8, |m, b| m | 1 << (b.index() - 1))
}

/// Streaming `.mbds` writer with O(users) memory.
///
/// Event columns (items, behavior codes, timestamps) are appended to
/// buffered temporary files next to the output path; only the offsets
/// column is held in memory. [`MbdsStreamWriter::finish`] assembles the
/// final file (header + name + offsets + spliced column files) and removes
/// the temporaries. Users must be appended in dense-id order.
pub struct MbdsStreamWriter {
    out_path: PathBuf,
    tmp_paths: [PathBuf; 3],
    items_w: BufWriter<File>,
    behaviors_w: BufWriter<File>,
    timestamps_w: BufWriter<File>,
    offsets: Vec<u64>,
    name: String,
    behaviors: Vec<Behavior>,
    target: Behavior,
    kcore: (u8, u8),
    max_item: ItemId,
    finished: bool,
}

/// Temporary-file path next to `out`. The process id is part of the name so
/// two concurrent conversions targeting the same output path write disjoint
/// temporaries instead of silently interleaving into each other's files.
fn tmp_path(out: &Path, suffix: &str) -> PathBuf {
    let mut os = out.as_os_str().to_owned();
    os.push(format!(".{}{suffix}", std::process::id()));
    PathBuf::from(os)
}

impl MbdsStreamWriter {
    /// Starts a new `.mbds` file at `out`. `behaviors` is the declared
    /// behavior set (must be non-empty, in funnel order, and contain
    /// `target`).
    pub fn create(
        out: &Path,
        name: &str,
        behaviors: &[Behavior],
        target: Behavior,
    ) -> Result<MbdsStreamWriter, FormatError> {
        if behaviors.is_empty() {
            return Err(FormatError::Corrupt("empty behavior set".to_string()));
        }
        if !behaviors.contains(&target) {
            return Err(FormatError::Corrupt(format!(
                "target behavior {} not in the declared behavior set",
                target.token()
            )));
        }
        if behaviors.windows(2).any(|w| w[0].depth() >= w[1].depth()) {
            return Err(FormatError::Corrupt(
                "behavior set not strictly in funnel order".to_string(),
            ));
        }
        if u64::try_from(name.len()).is_err() || name.len() > u32::MAX as usize {
            return Err(FormatError::Corrupt("dataset name too long".to_string()));
        }
        let tmp_paths = [
            tmp_path(out, ".items.part"),
            tmp_path(out, ".behaviors.part"),
            tmp_path(out, ".timestamps.part"),
        ];
        let items_w = BufWriter::new(File::create(&tmp_paths[0])?);
        let behaviors_w = BufWriter::new(File::create(&tmp_paths[1])?);
        let timestamps_w = BufWriter::new(File::create(&tmp_paths[2])?);
        Ok(MbdsStreamWriter {
            out_path: out.to_path_buf(),
            tmp_paths,
            items_w,
            behaviors_w,
            timestamps_w,
            offsets: vec![0],
            name: name.to_string(),
            behaviors: behaviors.to_vec(),
            target,
            kcore: (0, 0),
            max_item: 0,
            finished: false,
        })
    }

    /// Records the k-core thresholds the events were filtered with; they
    /// are stored in header bytes 42/43 so loaders can detect a `.mbds`
    /// file converted with different thresholds than they expect. `0`
    /// means unspecified (the default); values above `u8::MAX` are also
    /// stored as unspecified rather than saturated, so a reader never
    /// sees a wrong threshold.
    pub fn set_kcore(&mut self, k_user: usize, k_item: usize) {
        let enc = |k: usize| u8::try_from(k).unwrap_or(0);
        self.kcore = (enc(k_user), enc(k_item));
    }

    /// Appends the next user's time-ordered events. The three slices must
    /// have equal length; item ids must be nonzero (range vs. `num_items`
    /// is checked at [`MbdsStreamWriter::finish`]); behaviors must come
    /// from the declared set.
    pub fn append_user(
        &mut self,
        items: &[ItemId],
        behaviors: &[Behavior],
        timestamps: &[i64],
    ) -> Result<(), FormatError> {
        if items.len() != behaviors.len() || items.len() != timestamps.len() {
            return Err(FormatError::Corrupt("ragged user columns".to_string()));
        }
        for (&it, &bh) in items.iter().zip(behaviors) {
            if it == 0 {
                return Err(FormatError::Corrupt("item id 0 is reserved for padding".to_string()));
            }
            if !self.behaviors.contains(&bh) {
                return Err(FormatError::Corrupt(format!(
                    "behavior {} not in the declared set",
                    bh.token()
                )));
            }
            self.max_item = self.max_item.max(it);
            self.items_w.write_all(&it.to_le_bytes())?;
            self.behaviors_w.write_all(&[bh.index() as u8])?;
        }
        for &ts in timestamps {
            self.timestamps_w.write_all(&ts.to_le_bytes())?;
        }
        let last = *self.offsets.last().unwrap();
        self.offsets.push(last + items.len() as u64);
        Ok(())
    }

    /// Appends a user's [`Sequence`], synthesizing the per-user event index
    /// as the timestamp column (matching `save_tsv`).
    pub fn append_user_seq(&mut self, seq: &Sequence) -> Result<(), FormatError> {
        let ts: Vec<i64> = (0..seq.len() as i64).collect();
        self.append_user(&seq.items, &seq.behaviors, &ts)
    }

    /// Number of users appended so far.
    pub fn users_written(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of events appended so far.
    pub fn events_written(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Assembles the final `.mbds` file and removes the temporaries.
    /// `num_items` is the declared catalog size; every appended item id
    /// must be `<= num_items`. Returns the total file size in bytes.
    pub fn finish(mut self, num_items: usize) -> Result<u64, FormatError> {
        if (self.max_item as usize) > num_items {
            return Err(FormatError::Corrupt(format!(
                "item id {} exceeds declared num_items {num_items}",
                self.max_item
            )));
        }
        if num_items >= u32::MAX as usize {
            return Err(FormatError::Corrupt(format!(
                "num_items {num_items} exceeds the u32 item-id space"
            )));
        }
        self.items_w.flush()?;
        self.behaviors_w.flush()?;
        self.timestamps_w.flush()?;

        let num_users = self.users_written() as u64;
        let num_events = self.events_written();
        let lay = layout(num_users, num_events, self.name.len() as u64)?;

        // Assemble into a pid-unique temporary and atomically rename it
        // into place, so readers never observe a half-written file and
        // concurrent conversions to the same path each produce a complete
        // file (last rename wins).
        let final_tmp = tmp_path(&self.out_path, ".part");
        let assemble = || -> Result<(), FormatError> {
            let mut out = BufWriter::new(File::create(&final_tmp)?);
            let mut header = [0u8; HEADER_LEN as usize];
            header[0..8].copy_from_slice(MAGIC);
            header[8..12].copy_from_slice(&VERSION.to_le_bytes());
            header[12..16].copy_from_slice(&(HEADER_LEN as u32).to_le_bytes());
            header[16..24].copy_from_slice(&num_users.to_le_bytes());
            header[24..32].copy_from_slice(&(num_items as u64).to_le_bytes());
            header[32..40].copy_from_slice(&num_events.to_le_bytes());
            header[40] = self.target.index() as u8;
            header[41] = behavior_mask_of(&self.behaviors);
            header[42] = self.kcore.0;
            header[43] = self.kcore.1;
            header[44..48].copy_from_slice(&(self.name.len() as u32).to_le_bytes());
            out.write_all(&header)?;

            let pad = |w: &mut BufWriter<File>, end: u64, next: u64| -> io::Result<()> {
                w.write_all(&vec![0u8; (next - end) as usize])
            };
            out.write_all(self.name.as_bytes())?;
            pad(&mut out, lay.name.1, lay.offsets.0)?;
            for &o in &self.offsets {
                out.write_all(&o.to_le_bytes())?;
            }
            pad(&mut out, lay.offsets.1, lay.items.0)?;
            // Each column temp must splice in exactly the byte count the
            // layout promises; a short or long copy means the temp was
            // clobbered and the output would only fail later at open.
            let expected = [
                lay.items.1 - lay.items.0,
                lay.behaviors.1 - lay.behaviors.0,
                lay.timestamps.1 - lay.timestamps.0,
            ];
            for (i, tmp) in self.tmp_paths.iter().enumerate() {
                let mut f = File::open(tmp)?;
                let copied = io::copy(&mut f, &mut out)?;
                if copied != expected[i] {
                    return Err(FormatError::Corrupt(format!(
                        "column temp {} holds {copied} bytes, layout expects {}",
                        tmp.display(),
                        expected[i]
                    )));
                }
                match i {
                    0 => pad(&mut out, lay.items.1, lay.behaviors.0)?,
                    1 => pad(&mut out, lay.behaviors.1, lay.timestamps.0)?,
                    _ => {}
                }
            }
            out.flush()?;
            Ok(())
        };
        if let Err(e) = assemble() {
            let _ = std::fs::remove_file(&final_tmp);
            return Err(e);
        }
        if let Err(e) = std::fs::rename(&final_tmp, &self.out_path) {
            let _ = std::fs::remove_file(&final_tmp);
            return Err(e.into());
        }
        for tmp in &self.tmp_paths {
            let _ = std::fs::remove_file(tmp);
        }
        self.finished = true;
        Ok(lay.total)
    }
}

impl Drop for MbdsStreamWriter {
    fn drop(&mut self) {
        if !self.finished {
            for tmp in &self.tmp_paths {
                let _ = std::fs::remove_file(tmp);
            }
        }
    }
}

/// Writes an in-memory [`Dataset`] as a `.mbds` file (timestamps are the
/// per-user event index, matching `save_tsv`). The k-core thresholds are
/// left unspecified in the header — use [`write_mbds_kcore`] when they are
/// known. Returns total bytes written.
pub fn write_mbds(dataset: &Dataset, path: &Path) -> Result<u64, FormatError> {
    write_mbds_kcore(dataset, path, 0, 0)
}

/// [`write_mbds`] recording the `(k_user, k_item)` k-core thresholds the
/// dataset was filtered with in header bytes 42/43 (`0` = unspecified).
pub fn write_mbds_kcore(
    dataset: &Dataset,
    path: &Path,
    k_user: usize,
    k_item: usize,
) -> Result<u64, FormatError> {
    let mut w = MbdsStreamWriter::create(
        path,
        &dataset.name,
        &dataset.behaviors,
        dataset.target_behavior,
    )?;
    w.set_kcore(k_user, k_item);
    for seq in &dataset.sequences {
        w.append_user_seq(seq)?;
    }
    w.finish(dataset.num_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut s0 = Sequence::new();
        s0.push(1, Behavior::Click);
        s0.push(3, Behavior::Purchase);
        let mut s1 = Sequence::new();
        s1.push(2, Behavior::Click);
        s1.push(2, Behavior::Cart);
        s1.push(1, Behavior::Purchase);
        Dataset {
            name: "sample".to_string(),
            num_users: 2,
            num_items: 3,
            behaviors: vec![Behavior::Click, Behavior::Cart, Behavior::Purchase],
            target_behavior: Behavior::Purchase,
            sequences: vec![s0, s1],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("mbds_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.mbds");
        let ds = sample();
        let bytes = write_mbds(&ds, &path).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let f = MbdsFile::open(&path).unwrap();
        assert_eq!(f.num_users(), 2);
        assert_eq!(f.num_items(), 3);
        assert_eq!(f.num_events(), 5);
        assert_eq!(f.name(), "sample");
        assert_eq!(f.target_behavior(), Behavior::Purchase);
        assert_eq!(f.behaviors(), &ds.behaviors[..]);
        assert_eq!(f.user_offsets(), &[0, 2, 5]);
        assert_eq!(f.items(), &[1, 3, 2, 2, 1]);
        assert_eq!(f.timestamps(), &[0, 1, 0, 1, 2]);
        let back = f.to_dataset();
        assert_eq!(back.sequences, ds.sequences);
        assert_eq!(back.num_items, ds.num_items);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn kcore_thresholds_roundtrip_through_header() {
        let dir = std::env::temp_dir().join(format!("mbds_kcore_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kcore.mbds");
        let ds = sample();

        write_mbds(&ds, &path).unwrap();
        assert_eq!(MbdsFile::open(&path).unwrap().kcore_thresholds(), None);

        write_mbds_kcore(&ds, &path, 5, 3).unwrap();
        assert_eq!(MbdsFile::open(&path).unwrap().kcore_thresholds(), Some((5, 3)));

        // Thresholds above the u8 range are stored as unspecified, never
        // saturated to a wrong value.
        write_mbds_kcore(&ds, &path, 300, 3).unwrap();
        assert_eq!(MbdsFile::open(&path).unwrap().kcore_thresholds(), None);

        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn clobbered_column_temp_is_corrupt_at_finish() {
        let dir = std::env::temp_dir().join(format!("mbds_clobber_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clobber.mbds");
        let ds = sample();
        let mut w = MbdsStreamWriter::create(
            &path,
            &ds.name,
            &ds.behaviors,
            ds.target_behavior,
        )
        .unwrap();
        for seq in &ds.sequences {
            w.append_user_seq(seq).unwrap();
        }
        // Simulate another process truncating the items temp out from
        // under the writer: flush first so the append is durable, then
        // clobber the file on disk.
        w.items_w.flush().unwrap();
        std::fs::write(&w.tmp_paths[0], b"xx").unwrap();
        match w.finish(ds.num_items) {
            Err(FormatError::Corrupt(msg)) => {
                assert!(msg.contains("layout expects"), "{msg}")
            }
            other => panic!("expected Corrupt(short column temp), got {other:?}"),
        }
        // The half-assembled output must not have been renamed into place.
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let dir = std::env::temp_dir().join(format!("mbds_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.mbds");
        write_mbds(&sample(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(MbdsFile::open(&path), Err(FormatError::BadMagic)));
        bytes[0] = b'M';
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(MbdsFile::open(&path), Err(FormatError::BadVersion(99))));
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
