//! TSV import/export of interaction logs.
//!
//! Format (header optional, `#` comments skipped):
//! ```text
//! user \t item \t behavior \t timestamp
//! ```
//! Users and items may be arbitrary non-negative integers; loading densely
//! remaps them (items to `1..=n`, users to `0..m`) and orders each user's
//! events by timestamp (stable on ties).

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::types::{Behavior, Dataset, Interaction, ItemId, Sequence, UserId};

/// Errors from TSV parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file parsed but contained no interactions.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Empty => write!(f, "no interactions found"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses one TSV line (0-based `lineno`). Returns `Ok(None)` for blank
/// lines, `#` comments, and the optional first-line header. Shared by the
/// in-memory reader and the streaming converter in [`crate::preprocess`] so
/// both accept byte-identical inputs.
pub fn parse_interaction_line(lineno: usize, line: &str) -> Result<Option<Interaction>, IoError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    if lineno == 0 && trimmed.to_ascii_lowercase().starts_with("user") {
        return Ok(None); // header
    }
    let fields: Vec<&str> = trimmed.split('\t').collect();
    if fields.len() != 4 {
        return Err(IoError::Parse {
            line: lineno + 1,
            message: format!("expected 4 tab-separated fields, got {}", fields.len()),
        });
    }
    let parse_num = |s: &str, what: &str| {
        s.parse::<i64>().map_err(|_| IoError::Parse {
            line: lineno + 1,
            message: format!("bad {what}: {s:?}"),
        })
    };
    let user = parse_num(fields[0], "user id")?;
    let item = parse_num(fields[1], "item id")?;
    let behavior = Behavior::from_token(fields[2]).ok_or_else(|| IoError::Parse {
        line: lineno + 1,
        message: format!("unknown behavior {:?}", fields[2]),
    })?;
    let timestamp = parse_num(fields[3], "timestamp")?;
    if user < 0 || item < 0 {
        return Err(IoError::Parse {
            line: lineno + 1,
            message: "negative ids not allowed".into(),
        });
    }
    Ok(Some(Interaction {
        user: user as UserId,
        item: item as ItemId,
        behavior,
        timestamp,
    }))
}

/// Parses interactions from a TSV reader.
pub fn read_interactions<R: BufRead>(reader: R) -> Result<Vec<Interaction>, IoError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(inter) = parse_interaction_line(lineno, &line)? {
            out.push(inter);
        }
    }
    Ok(out)
}

/// Assembles raw interactions into a [`Dataset`], remapping ids densely and
/// sorting each user's events chronologically.
pub fn dataset_from_interactions(
    name: &str,
    mut interactions: Vec<Interaction>,
    target_behavior: Behavior,
) -> Result<Dataset, IoError> {
    if interactions.is_empty() {
        return Err(IoError::Empty);
    }
    interactions.sort_by_key(|i| (i.user, i.timestamp));

    let mut user_map: HashMap<UserId, UserId> = HashMap::new();
    let mut item_map: HashMap<ItemId, ItemId> = HashMap::new();
    let mut behaviors_present: Vec<Behavior> = Vec::new();
    for inter in &interactions {
        let next_u = user_map.len() as UserId;
        user_map.entry(inter.user).or_insert(next_u);
        let next_i = item_map.len() as ItemId + 1;
        item_map.entry(inter.item).or_insert(next_i);
        if !behaviors_present.contains(&inter.behavior) {
            behaviors_present.push(inter.behavior);
        }
    }
    behaviors_present.sort_by_key(|b| b.depth());
    if !behaviors_present.contains(&target_behavior) {
        return Err(IoError::Parse {
            line: 0,
            message: format!("target behavior {target_behavior:?} absent from log"),
        });
    }

    let mut sequences = vec![Sequence::new(); user_map.len()];
    for inter in &interactions {
        let u = user_map[&inter.user] as usize;
        sequences[u].push(item_map[&inter.item], inter.behavior);
    }
    let dataset = Dataset {
        name: name.to_string(),
        num_users: user_map.len(),
        num_items: item_map.len(),
        behaviors: behaviors_present,
        target_behavior,
        sequences,
    };
    dataset.validate().map_err(|m| IoError::Parse {
        line: 0,
        message: m,
    })?;
    Ok(dataset)
}

/// Loads a dataset from a TSV file.
pub fn load_tsv(path: impl AsRef<Path>, target_behavior: Behavior) -> Result<Dataset, IoError> {
    let file = std::fs::File::open(&path)?;
    let interactions = read_interactions(std::io::BufReader::new(file))?;
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "dataset".to_string());
    dataset_from_interactions(&name, interactions, target_behavior)
}

/// Writes a dataset back to TSV (timestamps are the per-user event index).
pub fn save_tsv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "user\titem\tbehavior\ttimestamp")?;
    for (u, seq) in dataset.sequences.iter().enumerate() {
        for (t, (&it, &b)) in seq.items.iter().zip(seq.behaviors.iter()).enumerate() {
            writeln!(w, "{u}\t{it}\t{}\t{t}", b.token())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "user\titem\tbehavior\ttimestamp\n\
        0\t10\tclick\t1\n\
        0\t10\tpurchase\t2\n\
        # comment line\n\
        1\t20\tclick\t5\n\
        1\t10\tclick\t3\n";

    #[test]
    fn parses_and_skips_header_and_comments() {
        let inters = read_interactions(SAMPLE.as_bytes()).unwrap();
        assert_eq!(inters.len(), 4);
        assert_eq!(inters[1].behavior, Behavior::Purchase);
    }

    #[test]
    fn dataset_orders_by_timestamp() {
        let inters = read_interactions(SAMPLE.as_bytes()).unwrap();
        let d = dataset_from_interactions("t", inters, Behavior::Purchase).unwrap();
        assert_eq!(d.num_users, 2);
        assert_eq!(d.num_items, 2);
        // User 1's events must be time-ordered: item 10 (t=3) before 20 (t=5).
        let u1 = &d.sequences[1];
        assert_eq!(u1.items.len(), 2);
        assert_eq!(u1.items[0], item_id_of(&d, 10));
        fn item_id_of(_d: &Dataset, _orig: u32) -> ItemId {
            // item 10 appeared first in the log → remapped to 1.
            1
        }
    }

    #[test]
    fn bad_behavior_is_error() {
        let text = "0\t1\tzap\t0\n";
        assert!(read_interactions(text.as_bytes()).is_err());
    }

    #[test]
    fn wrong_field_count_is_error() {
        let text = "0\t1\tclick\n";
        let err = read_interactions(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn missing_target_behavior_is_error() {
        let text = "0\t1\tclick\t0\n";
        let inters = read_interactions(text.as_bytes()).unwrap();
        assert!(dataset_from_interactions("t", inters, Behavior::Purchase).is_err());
    }

    #[test]
    fn empty_log_is_error() {
        assert!(matches!(
            dataset_from_interactions("t", Vec::new(), Behavior::Click),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn tsv_roundtrip_preserves_structure() {
        let inters = read_interactions(SAMPLE.as_bytes()).unwrap();
        let d = dataset_from_interactions("t", inters, Behavior::Purchase).unwrap();
        let dir = std::env::temp_dir().join("mbssl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.tsv");
        save_tsv(&d, &path).unwrap();
        let d2 = load_tsv(&path, Behavior::Purchase).unwrap();
        assert_eq!(d2.num_users, d.num_users);
        assert_eq!(d2.num_items, d.num_items);
        assert_eq!(d2.num_interactions(), d.num_interactions());
        std::fs::remove_file(&path).ok();
    }
}
