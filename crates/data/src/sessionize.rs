//! Session segmentation: splitting a user's event stream into sessions by
//! inactivity gaps — the preprocessing session-based recommenders (STAMP,
//! GRU4Rec in its original setting) assume.

use serde::{Deserialize, Serialize};

use crate::types::{Interaction, Sequence, UserId};

/// A single session: a contiguous burst of one user's activity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Owner of the session.
    pub user: UserId,
    /// Events inside the session, in time order.
    pub events: Sequence,
    /// Timestamp of the first event.
    pub start_ts: i64,
    /// Timestamp of the last event.
    pub end_ts: i64,
}

impl Session {
    /// Wall-clock span from first to last event.
    pub fn duration(&self) -> i64 {
        self.end_ts - self.start_ts
    }

    /// Number of events in the session.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the session holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Splits time-stamped interactions into sessions: a new session starts
/// whenever the gap to the previous event of the same user exceeds
/// `max_gap`. Interactions may arrive unsorted; they are ordered by
/// `(user, timestamp)` first. Sessions shorter than `min_len` are dropped.
pub fn sessionize(interactions: &[Interaction], max_gap: i64, min_len: usize) -> Vec<Session> {
    assert!(max_gap > 0, "max_gap must be positive");
    let mut sorted: Vec<&Interaction> = interactions.iter().collect();
    sorted.sort_by_key(|i| (i.user, i.timestamp));

    let mut sessions = Vec::new();
    let mut current: Option<Session> = None;
    for inter in sorted {
        let start_new = match &current {
            None => true,
            Some(s) => s.user != inter.user || inter.timestamp - s.end_ts > max_gap,
        };
        if start_new {
            if let Some(s) = current.take() {
                if s.len() >= min_len {
                    sessions.push(s);
                }
            }
            current = Some(Session {
                user: inter.user,
                events: Sequence::new(),
                start_ts: inter.timestamp,
                end_ts: inter.timestamp,
            });
        }
        let s = current.as_mut().expect("session initialized above");
        s.events.push(inter.item, inter.behavior);
        s.end_ts = inter.timestamp;
    }
    if let Some(s) = current {
        if s.len() >= min_len {
            sessions.push(s);
        }
    }
    sessions
}

/// Summary statistics over a session set.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SessionStats {
    /// Total number of sessions.
    pub sessions: usize,
    /// Mean events per session.
    pub mean_len: f64,
    /// Mean session duration (timestamp units).
    pub mean_duration: f64,
    /// Sessions divided by distinct users.
    pub sessions_per_user: f64,
}

/// Computes [`SessionStats`] over a session set (zeroed when empty).
pub fn session_stats(sessions: &[Session]) -> SessionStats {
    if sessions.is_empty() {
        return SessionStats::default();
    }
    let users: std::collections::HashSet<UserId> = sessions.iter().map(|s| s.user).collect();
    SessionStats {
        sessions: sessions.len(),
        mean_len: sessions.iter().map(Session::len).sum::<usize>() as f64 / sessions.len() as f64,
        mean_duration: sessions.iter().map(Session::duration).sum::<i64>() as f64
            / sessions.len() as f64,
        sessions_per_user: sessions.len() as f64 / users.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Behavior;

    fn ev(user: UserId, item: u32, ts: i64) -> Interaction {
        Interaction {
            user,
            item,
            behavior: Behavior::Click,
            timestamp: ts,
        }
    }

    #[test]
    fn splits_on_gap() {
        let events = vec![ev(0, 1, 0), ev(0, 2, 10), ev(0, 3, 100), ev(0, 4, 105)];
        let sessions = sessionize(&events, 30, 1);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].events.items, vec![1, 2]);
        assert_eq!(sessions[1].events.items, vec![3, 4]);
        assert_eq!(sessions[0].duration(), 10);
    }

    #[test]
    fn splits_on_user_change() {
        let events = vec![ev(0, 1, 0), ev(1, 2, 1)];
        let sessions = sessionize(&events, 1000, 1);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].user, 0);
        assert_eq!(sessions[1].user, 1);
    }

    #[test]
    fn unsorted_input_is_ordered() {
        let events = vec![ev(0, 3, 20), ev(0, 1, 0), ev(0, 2, 10)];
        let sessions = sessionize(&events, 30, 1);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].events.items, vec![1, 2, 3]);
    }

    #[test]
    fn min_len_filters_short_sessions() {
        let events = vec![ev(0, 1, 0), ev(0, 2, 100), ev(0, 3, 101)];
        let sessions = sessionize(&events, 30, 2);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].events.items, vec![2, 3]);
    }

    #[test]
    fn boundary_gap_stays_in_session() {
        // Gap exactly equal to max_gap does not split.
        let events = vec![ev(0, 1, 0), ev(0, 2, 30)];
        assert_eq!(sessionize(&events, 30, 1).len(), 1);
        assert_eq!(sessionize(&events, 29, 1).len(), 2);
    }

    #[test]
    fn stats_aggregate() {
        let events = vec![
            ev(0, 1, 0),
            ev(0, 2, 5),
            ev(0, 3, 100),
            ev(0, 4, 104),
            ev(1, 5, 0),
            ev(1, 6, 2),
        ];
        let sessions = sessionize(&events, 30, 1);
        let stats = session_stats(&sessions);
        assert_eq!(stats.sessions, 3);
        assert!((stats.mean_len - 2.0).abs() < 1e-12);
        assert!((stats.sessions_per_user - 1.5).abs() < 1e-12);
        assert_eq!(session_stats(&[]).sessions, 0);
    }

    #[test]
    fn empty_input_produces_no_sessions() {
        assert!(sessionize(&[], 10, 1).is_empty());
    }
}
