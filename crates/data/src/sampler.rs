//! Negative sampling and mini-batch assembly.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::preprocess::{EvalInstance, TrainInstance};
use crate::types::{Behavior, Dataset, ItemId, Sequence, UserId};

/// Negative-item sampler that never returns an item the user has touched.
pub struct NegativeSampler {
    num_items: usize,
    user_items: Vec<HashSet<ItemId>>,
    /// Cumulative popularity weights for popularity-weighted sampling.
    pop_cdf: Vec<f64>,
}

/// How negatives are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeStrategy {
    /// Uniform over the unseen catalog.
    Uniform,
    /// Proportional to empirical item frequency (harder negatives).
    Popularity,
}

impl NegativeSampler {
    /// Builds the sampler from full dataset interactions.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut user_items = vec![HashSet::new(); dataset.num_users];
        let mut counts = vec![1.0f64; dataset.num_items + 1]; // +1 smoothing
        counts[0] = 0.0;
        for (u, seq) in dataset.sequences.iter().enumerate() {
            for &it in &seq.items {
                user_items[u].insert(it);
                counts[it as usize] += 1.0;
            }
        }
        let mut pop_cdf = vec![0.0f64; dataset.num_items + 1];
        let mut acc = 0.0;
        for it in 1..=dataset.num_items {
            acc += counts[it];
            pop_cdf[it] = acc;
        }
        NegativeSampler {
            num_items: dataset.num_items,
            user_items,
            pop_cdf,
        }
    }

    /// Catalog size the sampler draws from.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Items the user has interacted with (any behavior).
    pub fn seen_by(&self, user: UserId) -> &HashSet<ItemId> {
        &self.user_items[user as usize]
    }

    /// Samples one negative for `user`, also excluding `extra` (typically
    /// the current positive target).
    pub fn sample_one(
        &self,
        user: UserId,
        extra: ItemId,
        strategy: NegativeStrategy,
        rng: &mut StdRng,
    ) -> ItemId {
        let seen = &self.user_items[user as usize];
        assert!(
            seen.len() + 1 < self.num_items,
            "user has interacted with almost all items; cannot sample negatives"
        );
        loop {
            let candidate = match strategy {
                NegativeStrategy::Uniform => rng.gen_range(1..=self.num_items) as ItemId,
                NegativeStrategy::Popularity => self.sample_popularity(rng),
            };
            if candidate != extra && !seen.contains(&candidate) {
                return candidate;
            }
        }
    }

    fn sample_popularity(&self, rng: &mut StdRng) -> ItemId {
        let total = self.pop_cdf[self.num_items];
        let x = rng.gen::<f64>() * total;
        // Binary search for the first CDF entry ≥ x.
        let mut lo = 1usize;
        let mut hi = self.num_items;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.pop_cdf[mid] < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as ItemId
    }

    /// Samples `n` distinct negatives for `user` (excluding `extra`).
    ///
    /// When the user's unseen-item pool is too small to supply `n` distinct
    /// negatives efficiently (tiny catalogs, heavy users), the seen-item
    /// exclusion is relaxed: the sampler falls back to drawing from all
    /// items except `extra`, which keeps candidate lists at exactly `n`
    /// entries (the 1-vs-N protocol's requirement) at the cost of a few
    /// already-seen negatives.
    ///
    /// # Panics
    /// Panics when the catalog itself is smaller than `n + 1`.
    pub fn sample_n(
        &self,
        user: UserId,
        extra: ItemId,
        n: usize,
        strategy: NegativeStrategy,
        rng: &mut StdRng,
    ) -> Vec<ItemId> {
        assert!(
            self.num_items > n,
            "cannot draw {n} distinct negatives from a {}-item catalog",
            self.num_items
        );
        let seen = &self.user_items[user as usize];
        let unseen_pool = self.num_items.saturating_sub(seen.len()).saturating_sub(1);
        // Rejection sampling stays efficient while the pool comfortably
        // exceeds the request; otherwise enumerate.
        if unseen_pool >= n * 2 {
            let mut out = Vec::with_capacity(n);
            let mut used: HashSet<ItemId> = HashSet::with_capacity(n);
            while out.len() < n {
                let neg = self.sample_one(user, extra, strategy, rng);
                if used.insert(neg) {
                    out.push(neg);
                }
            }
            return out;
        }
        // Fallback: all unseen items first (shuffled), topped up with seen
        // items if the unseen pool cannot fill the quota.
        use rand::seq::SliceRandom;
        let mut unseen: Vec<ItemId> = (1..=self.num_items as ItemId)
            .filter(|&i| i != extra && !seen.contains(&i))
            .collect();
        unseen.shuffle(rng);
        let mut out: Vec<ItemId> = unseen.into_iter().take(n).collect();
        if out.len() < n {
            let mut rest: Vec<ItemId> = (1..=self.num_items as ItemId)
                .filter(|&i| i != extra && seen.contains(&i))
                .collect();
            rest.shuffle(rng);
            out.extend(rest.into_iter().take(n - out.len()));
        }
        debug_assert_eq!(out.len(), n);
        out
    }
}

/// Evaluation candidate lists under the 1-vs-99 protocol: index 0 is the
/// positive target, followed by `num_negatives` sampled negatives.
pub struct EvalCandidates {
    /// One candidate list per eval instance; `lists[i][0]` is the target.
    pub lists: Vec<Vec<ItemId>>,
}

impl EvalCandidates {
    /// Builds candidate lists for `instances`, deterministically from
    /// `seed`. `num_negatives` is clamped to `catalog size − 2` so tiny
    /// test datasets still produce well-formed (if shorter) lists.
    pub fn build(
        instances: &[EvalInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        seed: u64,
    ) -> Self {
        let num_negatives = num_negatives.min(sampler.num_items().saturating_sub(2));
        let mut rng = StdRng::seed_from_u64(seed);
        let lists = instances
            .iter()
            .map(|inst| {
                let mut list = Vec::with_capacity(num_negatives + 1);
                list.push(inst.target);
                list.extend(sampler.sample_n(
                    inst.user,
                    inst.target,
                    num_negatives,
                    NegativeStrategy::Uniform,
                    &mut rng,
                ));
                list
            })
            .collect();
        EvalCandidates { lists }
    }
}

/// A padded training mini-batch in model-ready flat layout.
///
/// All per-position arrays are row-major `[B, L]`; right-padding (real
/// events first) with `valid == 0.0` marking pads. `behaviors` uses
/// [`Behavior::index`] with [`Behavior::PAD_INDEX`] for pads.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Number of instances `B`.
    pub size: usize,
    /// Padded sequence length `L`.
    pub max_len: usize,
    /// `[B, L]` item ids (0 = pad).
    pub items: Vec<usize>,
    /// `[B, L]` dense behavior indices ([`Behavior::PAD_INDEX`] = pad).
    pub behaviors: Vec<usize>,
    /// `[B, L]` validity mask: 1.0 for real events, 0.0 for pads.
    pub valid: Vec<f32>,
    /// `[B]` positive target item per instance.
    pub targets: Vec<usize>,
    /// `[B, num_negatives]` sampled negative items.
    pub negatives: Vec<usize>,
    /// Negatives per instance.
    pub num_negatives: usize,
    /// `[B]` owning user of each instance.
    pub users: Vec<UserId>,
}

impl Batch {
    /// Encodes instances into a padded batch, sampling `num_negatives`
    /// training negatives per instance.
    pub fn encode(
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        strategy: NegativeStrategy,
        rng: &mut StdRng,
    ) -> Batch {
        let size = instances.len();
        assert!(size > 0, "empty batch");
        let max_len = instances.iter().map(|i| i.history.len()).max().unwrap().max(1);
        let mut items = vec![0usize; size * max_len];
        let mut behaviors = vec![Behavior::PAD_INDEX; size * max_len];
        let mut valid = vec![0.0f32; size * max_len];
        let mut targets = Vec::with_capacity(size);
        let mut negatives = Vec::with_capacity(size * num_negatives);
        let mut users = Vec::with_capacity(size);
        for (b, inst) in instances.iter().enumerate() {
            encode_sequence_into(
                &inst.history,
                &mut items[b * max_len..],
                &mut behaviors[b * max_len..],
                &mut valid[b * max_len..],
            );
            targets.push(inst.target as usize);
            negatives.extend(
                sampler
                    .sample_n(inst.user, inst.target, num_negatives, strategy, rng)
                    .into_iter()
                    .map(|n| n as usize),
            );
            users.push(inst.user);
        }
        Batch {
            size,
            max_len,
            items,
            behaviors,
            valid,
            targets,
            negatives,
            num_negatives,
            users,
        }
    }

    /// Encodes evaluation histories (no negatives/targets needed beyond
    /// the candidate lists).
    pub fn encode_histories(histories: &[&Sequence]) -> Batch {
        let size = histories.len();
        assert!(size > 0, "empty batch");
        let max_len = histories.iter().map(|h| h.len()).max().unwrap().max(1);
        let mut items = vec![0usize; size * max_len];
        let mut behaviors = vec![Behavior::PAD_INDEX; size * max_len];
        let mut valid = vec![0.0f32; size * max_len];
        for (b, hist) in histories.iter().enumerate() {
            encode_sequence_into(
                hist,
                &mut items[b * max_len..],
                &mut behaviors[b * max_len..],
                &mut valid[b * max_len..],
            );
        }
        Batch {
            size,
            max_len,
            items,
            behaviors,
            valid,
            targets: Vec::new(),
            negatives: Vec::new(),
            num_negatives: 0,
            users: Vec::new(),
        }
    }
}

/// A fully materialized training-step input, safe to build off-thread.
///
/// Owns everything the graph pass needs (`Send`, no borrows): the possibly
/// truncated instances and the encoded batch with negatives already sampled.
/// The trainer's prefetch pipeline builds these on a producer thread so data
/// preparation overlaps the previous step's forward/backward.
pub struct PreparedBatch {
    /// Owned instances, truncated to the model's window when applicable.
    pub instances: Vec<TrainInstance>,
    /// Encoded padded batch with sampled negatives.
    pub batch: Batch,
}

impl PreparedBatch {
    /// Truncates histories to the most recent `max_seq_len` events (when
    /// given) and encodes the batch, sampling `num_negatives` per instance.
    pub fn build(
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        strategy: NegativeStrategy,
        max_seq_len: Option<usize>,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        let owned: Vec<TrainInstance> = instances
            .iter()
            .map(|inst| match max_seq_len {
                Some(l) => TrainInstance {
                    user: inst.user,
                    history: inst.history.truncate_to_recent(l),
                    target: inst.target,
                },
                None => (*inst).clone(),
            })
            .collect();
        let refs: Vec<&TrainInstance> = owned.iter().collect();
        let batch = Batch::encode(&refs, sampler, num_negatives, strategy, rng);
        PreparedBatch {
            instances: owned,
            batch,
        }
    }

    /// Borrowed instance references (the form model forward passes take).
    pub fn instance_refs(&self) -> Vec<&TrainInstance> {
        self.instances.iter().collect()
    }

    /// Borrowed history references.
    pub fn histories(&self) -> Vec<&Sequence> {
        self.instances.iter().map(|i| &i.history).collect()
    }
}

fn encode_sequence_into(seq: &Sequence, items: &mut [usize], behaviors: &mut [usize], valid: &mut [f32]) {
    for (t, (&it, &b)) in seq.items.iter().zip(seq.behaviors.iter()).enumerate() {
        items[t] = it as usize;
        behaviors[t] = b.index();
        valid[t] = 1.0;
    }
}

/// Shuffling mini-batch iterator over training instances.
pub struct BatchIterator<'a> {
    instances: &'a [TrainInstance],
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl<'a> BatchIterator<'a> {
    /// Shuffles `instances` with `rng` and iterates them in chunks of
    /// `batch_size`.
    pub fn new(instances: &'a [TrainInstance], batch_size: usize, rng: &mut StdRng) -> Self {
        assert!(batch_size > 0);
        let mut order: Vec<usize> = (0..instances.len()).collect();
        order.shuffle(rng);
        BatchIterator {
            instances,
            order,
            cursor: 0,
            batch_size,
        }
    }

    /// Next chunk of instance references, or `None` when exhausted.
    pub fn next_chunk(&mut self) -> Option<Vec<&'a TrainInstance>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let chunk = self.order[self.cursor..end]
            .iter()
            .map(|&i| &self.instances[i])
            .collect();
        self.cursor = end;
        Some(chunk)
    }

    /// Total number of chunks the iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{leave_one_out, SplitConfig};
    use crate::synthetic::SyntheticConfig;

    fn small_setup() -> (crate::types::Dataset, NegativeSampler) {
        let g = SyntheticConfig::taobao_like(21).scaled(0.1).generate();
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        (g.dataset, sampler)
    }

    #[test]
    fn negatives_exclude_seen_items() {
        let (dataset, sampler) = small_setup();
        let mut rng = StdRng::seed_from_u64(1);
        for u in 0..dataset.num_users.min(20) {
            let user = u as UserId;
            let negs = sampler.sample_n(user, 1, 10, NegativeStrategy::Uniform, &mut rng);
            for n in negs {
                assert!(!sampler.seen_by(user).contains(&n));
                assert_ne!(n, 1);
            }
        }
    }

    #[test]
    fn popularity_strategy_excludes_seen_too() {
        let (dataset, sampler) = small_setup();
        let mut rng = StdRng::seed_from_u64(2);
        for u in 0..dataset.num_users.min(10) {
            let user = u as UserId;
            let negs = sampler.sample_n(user, 2, 5, NegativeStrategy::Popularity, &mut rng);
            for n in negs {
                assert!(!sampler.seen_by(user).contains(&n));
            }
        }
    }

    #[test]
    fn sample_n_returns_distinct() {
        let (_, sampler) = small_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let negs = sampler.sample_n(0, 1, 50, NegativeStrategy::Uniform, &mut rng);
        let set: HashSet<ItemId> = negs.iter().copied().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn eval_candidates_start_with_target_and_are_deterministic() {
        let (dataset, sampler) = small_setup();
        let split = leave_one_out(&dataset, &SplitConfig::default());
        let a = EvalCandidates::build(&split.test, &sampler, 99, 9);
        let b = EvalCandidates::build(&split.test, &sampler, 99, 9);
        for (inst, list) in split.test.iter().zip(a.lists.iter()) {
            assert_eq!(list[0], inst.target);
            assert_eq!(list.len(), 100);
        }
        assert_eq!(a.lists, b.lists);
    }

    #[test]
    fn batch_encoding_pads_and_masks() {
        let (dataset, sampler) = small_setup();
        let split = leave_one_out(&dataset, &SplitConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        let batch = Batch::encode(&refs, &sampler, 3, NegativeStrategy::Uniform, &mut rng);
        assert_eq!(batch.size, 4);
        assert_eq!(batch.items.len(), 4 * batch.max_len);
        assert_eq!(batch.negatives.len(), 4 * 3);
        for (b, inst) in refs.iter().enumerate() {
            let hist_len = inst.history.len();
            for t in 0..batch.max_len {
                let idx = b * batch.max_len + t;
                if t < hist_len {
                    assert_eq!(batch.valid[idx], 1.0);
                    assert!(batch.items[idx] >= 1);
                    assert_ne!(batch.behaviors[idx], Behavior::PAD_INDEX);
                } else {
                    assert_eq!(batch.valid[idx], 0.0);
                    assert_eq!(batch.items[idx], 0);
                    assert_eq!(batch.behaviors[idx], Behavior::PAD_INDEX);
                }
            }
        }
    }

    #[test]
    fn batch_iterator_covers_all_instances_once() {
        let (dataset, _) = small_setup();
        let split = leave_one_out(&dataset, &SplitConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let mut it = BatchIterator::new(&split.train, 16, &mut rng);
        let mut total = 0;
        let mut batches = 0;
        while let Some(chunk) = it.next_chunk() {
            total += chunk.len();
            batches += 1;
            assert!(chunk.len() <= 16);
        }
        assert_eq!(total, split.train.len());
        assert_eq!(batches, it.num_batches());
    }

    #[test]
    fn sample_n_terminates_when_pool_smaller_than_request() {
        // Regression test: a heavy user on a tiny catalog once made
        // distinct-negative rejection sampling loop forever.
        let mut s0 = crate::types::Sequence::new();
        for i in 1..=18 {
            s0.push(i, crate::types::Behavior::Click);
        }
        let dataset = crate::types::Dataset {
            name: "tiny".into(),
            num_users: 1,
            num_items: 20,
            behaviors: vec![crate::types::Behavior::Click],
            target_behavior: crate::types::Behavior::Click,
            sequences: vec![s0],
        };
        let sampler = NegativeSampler::from_dataset(&dataset);
        let mut rng = StdRng::seed_from_u64(8);
        // User has seen 18 of 20 items; ask for 15 distinct negatives.
        let negs = sampler.sample_n(0, 19, 15, NegativeStrategy::Uniform, &mut rng);
        assert_eq!(negs.len(), 15);
        let set: HashSet<ItemId> = negs.iter().copied().collect();
        assert_eq!(set.len(), 15, "negatives must stay distinct");
        assert!(!negs.contains(&19), "positive leaked into negatives");
    }

    #[test]
    fn eval_candidates_clamp_to_catalog() {
        let mut s0 = crate::types::Sequence::new();
        s0.push(1, crate::types::Behavior::Click);
        let dataset = crate::types::Dataset {
            name: "micro".into(),
            num_users: 1,
            num_items: 10,
            behaviors: vec![crate::types::Behavior::Click],
            target_behavior: crate::types::Behavior::Click,
            sequences: vec![s0.clone()],
        };
        let sampler = NegativeSampler::from_dataset(&dataset);
        let instances = vec![crate::preprocess::EvalInstance {
            user: 0,
            history: s0,
            target: 2,
        }];
        // Request 99 negatives from a 10-item catalog: clamped to 8.
        let cands = EvalCandidates::build(&instances, &sampler, 99, 3);
        assert_eq!(cands.lists[0].len(), 9);
        assert_eq!(cands.lists[0][0], 2);
    }

    #[test]
    fn batch_iterator_shuffles() {
        let (dataset, _) = small_setup();
        let split = leave_one_out(&dataset, &SplitConfig::default());
        let mut rng1 = StdRng::seed_from_u64(6);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut a = BatchIterator::new(&split.train, split.train.len(), &mut rng1);
        let mut b = BatchIterator::new(&split.train, split.train.len(), &mut rng2);
        let ta: Vec<ItemId> = a.next_chunk().unwrap().iter().map(|i| i.target).collect();
        let tb: Vec<ItemId> = b.next_chunk().unwrap().iter().map(|i| i.target).collect();
        assert_ne!(ta, tb, "different seeds should shuffle differently");
    }
}
