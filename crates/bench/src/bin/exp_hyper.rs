//! Figures 4 & 5 — hyperparameter sensitivity.
//!
//! `--sweep k`   : number of interests K ∈ {1, 2, 4, 6, 8} (Figure 4);
//! `--sweep ssl` : grid over SSL loss weight λ ∈ {0, .05, .1, .2, .5} ×
//!                 temperature τ ∈ {.1, .2, .5, 1.0} (Figure 5 heat map);
//! `--sweep window` : hypergraph temporal window ∈ {2, 4, 8, 16} (extra
//!                 ablation of the hypergraph construction).
//! Default dataset: taobao-like (`--dataset` to change).

use mbssl_bench::{
    bench_model_config_for, build_workload, run_mbmissl_variant, write_json, ExpOptions, ModelResult,
};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    label: String,
    params: Vec<(String, f64)>,
    result: ModelResult,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let sweep = opts.flag_value("--sweep").unwrap_or("k").to_string();
    let dataset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&dataset, opts.scale, opts.seed);
    let base = bench_model_config_for(&dataset, opts.seed);

    let mut points: Vec<SweepPoint> = Vec::new();
    match sweep.as_str() {
        "k" => {
            println!("Figure 4 — interest count K sweep on {dataset}");
            for k in [1usize, 2, 4, 6, 8] {
                let mut cfg = base.clone();
                cfg.num_interests = k;
                let label = format!("K={k}");
                eprintln!("sweep {label} …");
                let result = run_mbmissl_variant(&label, cfg, &workload, None, &opts);
                println!(
                    "{label:<6} HR@10={:.4} NDCG@10={:.4}",
                    result.metrics.hr10, result.metrics.ndcg10
                );
                points.push(SweepPoint {
                    label,
                    params: vec![("k".into(), k as f64)],
                    result,
                });
            }
            write_json(&opts, "fig4_interest_sweep", &points);
        }
        "ssl" => {
            println!("Figure 5 — SSL weight λ × temperature τ grid on {dataset}");
            for &lambda in &[0.0f32, 0.05, 0.1, 0.2, 0.5] {
                for &tau in &[0.1f32, 0.2, 0.5, 1.0] {
                    let mut cfg = base.clone();
                    cfg.lambda_align = lambda;
                    cfg.lambda_aug = lambda;
                    cfg.lambda_disent = lambda / 2.0;
                    cfg.temperature = tau;
                    let label = format!("λ={lambda} τ={tau}");
                    eprintln!("sweep {label} …");
                    let result = run_mbmissl_variant(&label, cfg, &workload, None, &opts);
                    println!(
                        "{label:<16} HR@10={:.4} NDCG@10={:.4}",
                        result.metrics.hr10, result.metrics.ndcg10
                    );
                    points.push(SweepPoint {
                        label,
                        params: vec![("lambda".into(), lambda as f64), ("tau".into(), tau as f64)],
                        result,
                    });
                }
            }
            write_json(&opts, "fig5_ssl_grid", &points);
        }
        "extractor" => {
            println!("Extra — interest extractor comparison (SA vs DR) on {dataset}");
            for (label, kind) in [
                ("self-attentive", mbssl_core::config::ExtractorKind::SelfAttentive),
                ("dynamic-routing", mbssl_core::config::ExtractorKind::DynamicRouting),
            ] {
                let mut cfg = base.clone();
                cfg.extractor = kind;
                eprintln!("sweep {label} …");
                let result = run_mbmissl_variant(label, cfg, &workload, None, &opts);
                println!(
                    "{label:<16} HR@10={:.4} NDCG@10={:.4}",
                    result.metrics.hr10, result.metrics.ndcg10
                );
                points.push(SweepPoint {
                    label: label.to_string(),
                    params: vec![],
                    result,
                });
            }
            write_json(&opts, "figx_extractor", &points);
        }
        "aux" => {
            println!("Extra — auxiliary-prediction weight λ_aux sweep on {dataset}");
            for &lambda in &[0.0f32, 0.1, 0.2, 0.5] {
                let mut cfg = base.clone();
                cfg.lambda_aux = lambda;
                let label = format!("λ_aux={lambda}");
                eprintln!("sweep {label} …");
                let result = run_mbmissl_variant(&label, cfg, &workload, None, &opts);
                println!(
                    "{label:<14} HR@10={:.4} NDCG@10={:.4}",
                    result.metrics.hr10, result.metrics.ndcg10
                );
                points.push(SweepPoint {
                    label,
                    params: vec![("lambda_aux".into(), lambda as f64)],
                    result,
                });
            }
            write_json(&opts, "figx_aux_sweep", &points);
        }
        "window" => {
            println!("Extra — hypergraph window sweep on {dataset}");
            for w in [2usize, 4, 8, 16] {
                let mut cfg = base.clone();
                cfg.hg_window = w;
                let label = format!("window={w}");
                eprintln!("sweep {label} …");
                let result = run_mbmissl_variant(&label, cfg, &workload, None, &opts);
                println!(
                    "{label:<10} HR@10={:.4} NDCG@10={:.4}",
                    result.metrics.hr10, result.metrics.ndcg10
                );
                points.push(SweepPoint {
                    label,
                    params: vec![("window".into(), w as f64)],
                    result,
                });
            }
            write_json(&opts, "figx_window_sweep", &points);
        }
        other => panic!("unknown sweep {other}; expected k | ssl | window | aux"),
    }
}
