//! Table 1 — dataset statistics of the three synthetic presets.
//!
//! Regenerates the "Statistics of datasets" table: users, items,
//! per-behavior interaction counts, average sequence length, density.

use mbssl_bench::{build_workload, write_json, ExpOptions, PRESETS};

fn main() {
    let opts = ExpOptions::parse_args();
    println!("Table 1: dataset statistics (scale = {})", opts.scale);
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>10} {:>24} {:>10}",
        "dataset", "users", "items", "interactions", "avg-len", "per-behavior", "density"
    );

    let mut all_stats = Vec::new();
    for preset in PRESETS {
        let w = build_workload(preset, opts.scale, opts.seed);
        let stats = w.dataset.stats();
        let behaviors: Vec<String> = stats
            .per_behavior
            .iter()
            .map(|(b, c)| format!("{b}:{c}"))
            .collect();
        println!(
            "{:<14} {:>8} {:>8} {:>12} {:>10.2} {:>24} {:>10.5}",
            stats.name,
            stats.users,
            stats.items,
            stats.interactions,
            stats.avg_seq_len,
            behaviors.join(" "),
            stats.density,
        );
        // Split sizes and popularity concentration, for the record.
        println!(
            "{:<14} train instances: {}, val: {}, test: {}, popularity gini: {:.3}",
            "",
            w.split.train.len(),
            w.split.val.len(),
            w.split.test.len(),
            w.dataset.popularity_gini(),
        );
        all_stats.push(stats);
    }
    write_json(&opts, "table1_datasets", &all_stats);
}
