//! Figure 7 — behavior contribution: MBMISSL trained on nested behavior
//! subsets of the taobao-like preset (target behavior always kept). Each
//! auxiliary behavior's marginal value shows up as the metric drop when it
//! is removed.

use mbssl_bench::{
    behavior_subset_split, bench_model_config, build_workload, run_mbmissl_variant, write_json,
    ExpOptions, ModelResult,
};
use mbssl_data::Behavior;
use serde::Serialize;

#[derive(Serialize)]
struct BehaviorResults {
    dataset: String,
    rows: Vec<ModelResult>,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let dataset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&dataset, opts.scale, opts.seed);
    let target = workload.dataset.target_behavior;
    let all_behaviors = workload.dataset.behaviors.clone();

    // Nested subsets: target only → +click → +cart → +favorite (full).
    let mut subsets: Vec<(String, Vec<Behavior>)> = vec![(
        format!("{} only", target.token()),
        vec![target],
    )];
    let mut acc = vec![target];
    for &b in all_behaviors.iter().filter(|&&b| b != target) {
        acc.push(b);
        let label = format!(
            "+{}",
            acc.iter()
                .filter(|&&x| x != target)
                .map(|x| x.token())
                .collect::<Vec<_>>()
                .join("+")
        );
        subsets.push((label, acc.clone()));
    }

    println!("Figure 7 — behavior contribution on {dataset}");
    let mut rows = Vec::new();
    for (label, keep) in subsets {
        eprintln!("subset {label} …");
        let filtered = behavior_subset_split(&workload.split, &keep);
        let result = run_mbmissl_variant(
            &label,
            bench_model_config(opts.seed),
            &workload,
            Some(&filtered),
            &opts,
        );
        println!(
            "{label:<28} HR@10={:.4} NDCG@10={:.4} (test n={})",
            result.metrics.hr10,
            result.metrics.ndcg10,
            result.metrics.count
        );
        rows.push(result);
    }
    write_json(
        &opts,
        "fig7_behaviors",
        &BehaviorResults {
            dataset,
            rows,
        },
    );
}
