//! Table 5 — time efficiency: per-epoch training time, per-batch inference
//! latency, and parameter count for the main models on a fixed workload.
//! Wall-clock numbers are machine-relative; the *ratios* between models
//! are the reproducible shape.

use std::time::Instant;

use mbssl_bench::{build_workload, write_json, ExpOptions};
use mbssl_baselines::{Gru4Rec, Mbt, SasRec};
use mbssl_core::{BehaviorSchema, Mbmissl, TrainableRecommender};
use mbssl_data::sampler::EvalCandidates;
use mbssl_data::ItemId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct EfficiencyRow {
    model: String,
    threads: usize,
    params: usize,
    train_ms_per_batch: f64,
    infer_ms_per_user: f64,
}

fn measure<M: TrainableRecommender>(
    name: &str,
    model: &M,
    workload: &mbssl_bench::Workload,
    candidates: &EvalCandidates,
    opts: &ExpOptions,
) -> EfficiencyRow {
    let batch_size = 128usize.min(workload.split.train.len());
    let instances: Vec<_> = workload.split.train.iter().take(batch_size).collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Warm-up + timed train steps (forward + backward, no optimizer to
    // isolate model cost).
    model
        .loss_on_batch(&instances, &workload.sampler, 64, &mut rng)
        .backward();
    let reps = 3;
    let start = Instant::now();
    for _ in 0..reps {
        for p in model.params() {
            p.zero_grad();
        }
        model
            .loss_on_batch(&instances, &workload.sampler, 64, &mut rng)
            .backward();
    }
    let train_ms_per_batch = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    // Timed inference over the test set (batched scoring).
    let n_eval = workload.split.test.len().min(256);
    let histories: Vec<_> = workload.split.test[..n_eval]
        .iter()
        .map(|t| &t.history)
        .collect();
    let cand_refs: Vec<&[ItemId]> = candidates.lists[..n_eval]
        .iter()
        .map(|l| l.as_slice())
        .collect();
    let start = Instant::now();
    let scores = model.score_batch(&histories, &cand_refs);
    let infer_ms_per_user = start.elapsed().as_secs_f64() * 1000.0 / n_eval as f64;
    assert_eq!(scores.len(), n_eval);

    EfficiencyRow {
        model: name.to_string(),
        threads: mbssl_tensor::pool::threads(),
        params: model.params().iter().map(|p| p.numel()).sum(),
        train_ms_per_batch,
        infer_ms_per_user,
    }
}

fn main() {
    let opts = ExpOptions::parse_args();
    let dataset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&dataset, opts.scale, opts.seed);
    let d = &workload.dataset;
    let candidates = &workload.test_candidates;

    println!(
        "Table 5 — efficiency on {dataset} (batch 128, 64 negatives, {} worker thread(s); set MBSSL_THREADS to override)",
        mbssl_tensor::pool::threads()
    );
    let mut rows = Vec::new();
    rows.push(measure(
        "GRU4Rec",
        &Gru4Rec::new(d.num_items, 32, 50, opts.seed),
        &workload,
        candidates,
        &opts,
    ));
    rows.push(measure(
        "SASRec",
        &SasRec::new(d.num_items, 32, 2, 2, 50, 0.1, opts.seed),
        &workload,
        candidates,
        &opts,
    ));
    rows.push(measure(
        "MBT",
        &Mbt::new(d.num_items, d.target_behavior, 32, 2, 2, 50, 0.1, opts.seed),
        &workload,
        candidates,
        &opts,
    ));
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    rows.push(measure(
        "MBMISSL",
        &Mbmissl::new(d.num_items, schema, mbssl_bench::bench_model_config(opts.seed)),
        &workload,
        candidates,
        &opts,
    ));

    println!(
        "{:<12} {:>10} {:>20} {:>18}",
        "model", "params", "train ms/batch", "infer ms/user"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>20.1} {:>18.3}",
            r.model, r.params, r.train_ms_per_batch, r.infer_ms_per_user
        );
    }
    write_json(&opts, "table5_efficiency", &rows);
}
