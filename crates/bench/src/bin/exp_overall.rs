//! Table 2 — overall performance comparison (HR@{5,10}, NDCG@{5,10}) of
//! every model on every dataset preset, plus Table 3 — paired-t
//! significance of MBMISSL versus the best baseline (`--significance`).
//!
//! Flags: `--dataset <preset>` restricts to one preset; `--models a,b,c`
//! restricts the model list; `--significance` adds Table 3.

use mbssl_bench::{
    all_models, build_workload, print_table, run_model, write_json, ExpOptions, ModelResult,
    OURS, PRESETS,
};
use mbssl_metrics::paired_t_test;
use serde::Serialize;

#[derive(Serialize)]
struct OverallResults {
    dataset: String,
    rows: Vec<ModelResult>,
    significance: Option<Significance>,
}

#[derive(Serialize)]
struct Significance {
    best_baseline: String,
    metric: String,
    t: f64,
    p_value: f64,
    significant_at_001: bool,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let presets: Vec<&str> = match opts.flag_value("--dataset") {
        Some(d) => vec![PRESETS.iter().copied().find(|p| *p == d).expect("unknown preset")],
        None => PRESETS.to_vec(),
    };
    let models: Vec<String> = match opts.flag_value("--models") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => all_models().into_iter().map(String::from).collect(),
    };

    let mut all = Vec::new();
    for preset in presets {
        println!(
            "\n### dataset {preset} (scale {}, epochs {}) ###",
            opts.scale, opts.epochs
        );
        let workload = build_workload(preset, opts.scale, opts.seed);
        let mut rows: Vec<ModelResult> = Vec::new();
        for model in &models {
            eprintln!("[{preset}] training {model} …");
            let result = run_model(model, &workload, &opts);
            eprintln!(
                "[{preset}] {model}: {}",
                result.metrics.summary()
            );
            rows.push(result);
        }
        print_table(&format!("Table 2 — {preset}"), &rows);

        // Table 3: significance of ours vs best baseline by NDCG@10.
        let significance = if opts.has_flag("--significance") {
            build_significance(&rows)
        } else {
            None
        };
        if let Some(s) = &significance {
            println!(
                "Table 3 — {preset}: MBMISSL vs {} on per-user NDCG@10: t={:.3}, p={:.2e}{}",
                s.best_baseline,
                s.t,
                s.p_value,
                if s.significant_at_001 { " (significant at 0.01)" } else { "" }
            );
        }
        all.push(OverallResults {
            dataset: preset.to_string(),
            rows,
            significance,
        });
    }
    write_json(&opts, "table2_overall", &all);
}

fn build_significance(rows: &[ModelResult]) -> Option<Significance> {
    let ours = rows.iter().find(|r| r.model == OURS)?;
    let best_baseline = rows
        .iter()
        .filter(|r| r.model != OURS)
        .max_by(|a, b| a.metrics.ndcg10.partial_cmp(&b.metrics.ndcg10).unwrap())?;
    // Per-instance NDCG@10 vectors from the stored ranks.
    let ndcg = |ranks: &[usize]| -> Vec<f64> {
        ranks
            .iter()
            .map(|&r| mbssl_metrics::ranking::ndcg_at_k(r, 10))
            .collect()
    };
    let a = ndcg(&ours.test_ranks);
    let b = ndcg(&best_baseline.test_ranks);
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let t = paired_t_test(&a, &b);
    Some(Significance {
        best_baseline: best_baseline.model.clone(),
        metric: "NDCG@10".into(),
        t: t.t,
        p_value: t.p_value,
        significant_at_001: t.significant_at(0.01),
    })
}
