//! Serving load test — closed-loop concurrent clients against the
//! micro-batched request engine (DESIGN.md §15), in three phases over the
//! same engine and request stream:
//!
//! 1. `sequential` — batch 1, one worker, cache off: the per-request
//!    baseline, equivalent to looping `recommend_top_n`;
//! 2. `batched`    — cross-request micro-batching, cache off: what the
//!    batcher alone buys under concurrency;
//! 3. `cached`     — batching plus the per-user interest cache: the
//!    steady-state serving configuration.
//!
//! Reports QPS, p50/p99 latency, the batch-size histogram, and the cache
//! hit rate per phase (`results/serve.json`); `scripts/bench_smoke.sh`
//! distills the `serve` section of `BENCH_throughput.json` from it. The
//! figure of record is `cached QPS / sequential QPS` at ≥16 clients —
//! the full engine against single-request serving. The batched-only
//! ratio is reported alongside; on a single-core host it hovers near 1×
//! (the encoder is compute-bound, so batch amortization needs either
//! the cache or spare cores to pay off), which is why the cache ships on
//! by default.
//!
//! Flags: `--clients N` (default 16), `--reqs N` per client (default 64),
//! `--batch N` (default 16), `--top N` (default 10).

use std::sync::Arc;
use std::time::Instant;

use mbssl_bench::{build_workload, write_json, ExpOptions};
use mbssl_core::serve::{RerankChain, ServeConfig, Server, SessionStore};
use mbssl_core::{BehaviorSchema, InferenceModel, Mbmissl};
use mbssl_data::UserId;
use serde::Serialize;

#[derive(Serialize)]
struct PhaseRow {
    phase: String,
    clients: usize,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch: f64,
    cache_hit_rate: f64,
    /// `batch_hist[s]` = batches that served exactly `s` requests.
    batch_hist: Vec<u64>,
}

#[derive(Serialize)]
struct ServeReport {
    dataset: String,
    num_users: usize,
    num_items: usize,
    top_n: usize,
    threads: usize,
    phases: Vec<PhaseRow>,
    /// Batched (cache-off) QPS over the sequential baseline.
    batched_speedup: f64,
    /// Full-engine (batch + cache) QPS over the sequential baseline —
    /// the serving figure of record.
    cached_speedup: f64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// One closed-loop phase: `clients` threads each issue `reqs` blocking
/// requests round-robin over the user base.
fn run_phase(
    phase: &str,
    engine: InferenceModel,
    dataset: &mbssl_data::Dataset,
    config: ServeConfig,
    clients: usize,
    reqs: usize,
    top_n: usize,
) -> PhaseRow {
    let server = Server::start(
        engine,
        Arc::new(SessionStore::from_dataset(dataset)),
        RerankChain::empty(),
        config,
    );
    let num_users = dataset.num_users;
    let started = Instant::now();
    let server_ref = &server;
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(reqs);
                    for i in 0..reqs {
                        let user = ((c * reqs + i) % num_users) as UserId;
                        let t0 = Instant::now();
                        let reply = server_ref.submit(user, top_n).expect("server closed");
                        lat.push(t0.elapsed().as_micros() as u64);
                        assert_eq!(reply.recs.len(), top_n.min(num_users.max(top_n)));
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();
    let stats = server.shutdown();
    latencies.sort_unstable();
    let total = clients * reqs;
    PhaseRow {
        phase: phase.to_string(),
        clients,
        requests: total,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: total as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_batch: stats.mean_batch(),
        cache_hit_rate: stats.cache_hit_rate(),
        batch_hist: stats.batch_hist,
    }
}

fn main() {
    let opts = ExpOptions::parse_args();
    let clients: usize = opts
        .flag_value("--clients")
        .map(|v| v.parse().expect("--clients"))
        .unwrap_or(16);
    let reqs: usize = opts
        .flag_value("--reqs")
        .map(|v| v.parse().expect("--reqs"))
        .unwrap_or(64);
    let max_batch: usize = opts
        .flag_value("--batch")
        .map(|v| v.parse().expect("--batch"))
        .unwrap_or(16);
    let top_n: usize = opts
        .flag_value("--top")
        .map(|v| v.parse().expect("--top"))
        .unwrap_or(10);

    let preset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&preset, opts.scale, opts.seed);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let model = Mbmissl::new(d.num_items, schema, mbssl_bench::bench_model_config(opts.seed));

    println!(
        "serve load test on {preset}: {} users / {} items, {} clients × {} reqs, top-{top_n}, \
         batch≤{max_batch}, {} worker thread(s)",
        d.num_users,
        d.num_items,
        clients,
        reqs,
        mbssl_tensor::pool::threads()
    );

    // Fresh engine per phase (the server consumes it); compilation is
    // deterministic so every phase serves the identical model.
    // `MBSSL_SERVE_WAIT_US` / `MBSSL_SERVE_QUEUE` tune all three phases;
    // batch width and caching are pinned per phase below.
    let engine = || InferenceModel::compile(&model);
    let base = ServeConfig::from_env();
    let phases = vec![
        run_phase(
            "sequential",
            engine(),
            d,
            ServeConfig { max_batch: 1, workers: 1, cache: false, ..base.clone() },
            clients,
            reqs,
            top_n,
        ),
        run_phase(
            "batched",
            engine(),
            d,
            ServeConfig { max_batch, workers: 2, cache: false, ..base.clone() },
            clients,
            reqs,
            top_n,
        ),
        run_phase(
            "cached",
            engine(),
            d,
            ServeConfig { max_batch, workers: 2, cache: true, ..base.clone() },
            clients,
            reqs,
            top_n,
        ),
    ];

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "phase", "qps", "p50 µs", "p99 µs", "mean batch", "cache hit%", "wall ms"
    );
    for p in &phases {
        println!(
            "{:<12} {:>9.0} {:>10} {:>10} {:>10.2} {:>11.0} {:>10.1}",
            p.phase,
            p.qps,
            p.p50_us,
            p.p99_us,
            p.mean_batch,
            100.0 * p.cache_hit_rate,
            p.wall_ms
        );
    }
    let batched_speedup = phases[1].qps / phases[0].qps;
    let cached_speedup = phases[2].qps / phases[0].qps;
    println!(
        "serve engine speedup (batch+cache): {cached_speedup:.2}x over single-request \
         serving at {clients} clients (batching alone: {batched_speedup:.2}x)"
    );

    let report = ServeReport {
        dataset: preset,
        num_users: d.num_users,
        num_items: d.num_items,
        top_n,
        threads: mbssl_tensor::pool::threads(),
        phases,
        batched_speedup: (batched_speedup * 100.0).round() / 100.0,
        cached_speedup: (cached_speedup * 100.0).round() / 100.0,
    };
    write_json(&opts, "serve", &report);
}
