//! Serving load test — closed-loop concurrent clients against the
//! micro-batched request engine (DESIGN.md §15), in three phases over the
//! same engine and request stream:
//!
//! 1. `sequential` — batch 1, one worker, cache off: the per-request
//!    baseline, equivalent to looping `recommend_top_n`;
//! 2. `batched`    — cross-request micro-batching, cache off: what the
//!    batcher alone buys under concurrency;
//! 3. `cached`     — batching plus the per-user interest cache: the
//!    steady-state serving configuration.
//!
//! Reports QPS, p50/p90/p99 latency, the per-stage quantile breakdown,
//! the batch-size histogram, and the cache hit rate per phase
//! (`results/serve.json`); `scripts/bench_smoke.sh`
//! distills the `serve` section of `BENCH_throughput.json` from it. The
//! figure of record is `cached QPS / sequential QPS` at ≥16 clients —
//! the full engine against single-request serving. The batched-only
//! ratio is reported alongside; on a single-core host it hovers near 1×
//! (the encoder is compute-bound, so batch amortization needs either
//! the cache or spare cores to pay off), which is why the cache ships on
//! by default.
//!
//! Flags: `--clients N` (default 16), `--reqs N` per client (default 64),
//! `--batch N` (default 16), `--top N` (default 10).

use std::sync::Arc;
use std::time::Instant;

use mbssl_bench::{build_workload, write_json, ExpOptions};
use mbssl_core::serve::{RerankChain, ServeConfig, Server, SessionStore, Stage};
use mbssl_core::{BehaviorSchema, InferenceModel, Mbmissl};
use mbssl_data::UserId;
use mbssl_telemetry::LatencyHistogram;
use serde::Serialize;

#[derive(Serialize)]
struct StageRow {
    stage: String,
    count: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

#[derive(Serialize)]
struct PhaseRow {
    phase: String,
    clients: usize,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    mean_batch: f64,
    cache_hit_rate: f64,
    /// `batch_hist[s]` = batches that served exactly `s` requests
    /// (exact for batch sizes ≤ 32, i.e. every realistic `--batch`).
    batch_hist: Vec<u64>,
    /// Server-side per-stage latency quantiles (queue → reply), from the
    /// constant-memory stage histograms in [`mbssl_core::ServeStats`].
    stages: Vec<StageRow>,
}

#[derive(Serialize)]
struct ServeReport {
    dataset: String,
    num_users: usize,
    num_items: usize,
    top_n: usize,
    threads: usize,
    phases: Vec<PhaseRow>,
    /// Batched (cache-off) QPS over the sequential baseline.
    batched_speedup: f64,
    /// Full-engine (batch + cache) QPS over the sequential baseline —
    /// the serving figure of record.
    cached_speedup: f64,
}

/// Nearest-rank percentile over exact samples — kept only for the
/// debug-build cross-check against the histogram quantiles.
#[cfg(debug_assertions)]
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx]
}

/// Debug builds keep every exact latency alongside the histogram and
/// assert the histogram quantiles stay within the documented bucket
/// error bound (`mbssl_telemetry::hist::REL_ERROR`). Release builds
/// record into the constant-memory histogram only.
#[cfg(debug_assertions)]
fn cross_check(exact_ns: &mut Vec<u64>, hist: &mbssl_telemetry::Histogram) {
    use mbssl_telemetry::hist::REL_ERROR;
    exact_ns.sort_unstable();
    assert_eq!(hist.count(), exact_ns.len() as u64, "histogram lost samples");
    for q in [0.50, 0.90, 0.99] {
        let want = percentile(exact_ns, q);
        let got = hist.quantile(q);
        let tol = (want as f64 * REL_ERROR).max(1.0);
        assert!(
            (got as f64 - want as f64).abs() <= tol,
            "histogram q{q} = {got}ns vs exact {want}ns exceeds ±{tol:.0}ns"
        );
    }
}

/// One closed-loop phase: `clients` threads each issue `reqs` blocking
/// requests round-robin over the user base. Client-observed latencies go
/// into one shared lock-free histogram (constant memory regardless of
/// request count).
fn run_phase(
    phase: &str,
    engine: InferenceModel,
    dataset: &mbssl_data::Dataset,
    config: ServeConfig,
    clients: usize,
    reqs: usize,
    top_n: usize,
) -> PhaseRow {
    let server = Server::start(
        engine,
        Arc::new(SessionStore::from_dataset(dataset)),
        RerankChain::empty(),
        config,
    );
    let num_users = dataset.num_users;
    let hist = LatencyHistogram::new();
    #[cfg(debug_assertions)]
    let exact = std::sync::Mutex::new(Vec::new());
    let started = Instant::now();
    let server_ref = &server;
    let hist_ref = &hist;
    #[cfg(debug_assertions)]
    let exact_ref = &exact;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    #[cfg(debug_assertions)]
                    let mut lat = Vec::with_capacity(reqs);
                    for i in 0..reqs {
                        let user = ((c * reqs + i) % num_users) as UserId;
                        let t0 = Instant::now();
                        let reply = server_ref.submit(user, top_n).expect("server closed");
                        let ns = t0.elapsed().as_nanos() as u64;
                        hist_ref.record(ns);
                        #[cfg(debug_assertions)]
                        lat.push(ns);
                        assert_eq!(reply.recs.len(), top_n.min(num_users.max(top_n)));
                    }
                    #[cfg(debug_assertions)]
                    exact_ref.lock().unwrap().extend(lat);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let wall = started.elapsed();
    let stats = server.shutdown();
    let lat = hist.snapshot();
    #[cfg(debug_assertions)]
    cross_check(&mut exact.into_inner().unwrap(), &lat);

    // Reconstruct the exact per-size batch counts from the histogram:
    // batch sizes ≤ 32 land in exact unit-width buckets, so `lower` IS
    // the batch size for every realistic `--batch`.
    let mut batch_hist = vec![0u64; stats.batch.max() as usize + 1];
    for b in stats.batch.nonzero_buckets() {
        let top = batch_hist.len() - 1;
        batch_hist[(b.lower as usize).min(top)] += b.count;
    }

    let stages = Stage::ALL
        .iter()
        .map(|&s| {
            let h = stats.stage(s);
            StageRow {
                stage: s.name().to_string(),
                count: h.count(),
                p50_us: h.quantile(0.50) / 1_000,
                p90_us: h.quantile(0.90) / 1_000,
                p99_us: h.quantile(0.99) / 1_000,
                max_us: h.max() / 1_000,
            }
        })
        .collect();

    let total = clients * reqs;
    PhaseRow {
        phase: phase.to_string(),
        clients,
        requests: total,
        wall_ms: wall.as_secs_f64() * 1e3,
        qps: total as f64 / wall.as_secs_f64(),
        p50_us: lat.quantile(0.50) / 1_000,
        p90_us: lat.quantile(0.90) / 1_000,
        p99_us: lat.quantile(0.99) / 1_000,
        mean_batch: stats.mean_batch(),
        cache_hit_rate: stats.cache_hit_rate(),
        batch_hist,
        stages,
    }
}

fn main() {
    let opts = ExpOptions::parse_args();
    let clients: usize = opts
        .flag_value("--clients")
        .map(|v| v.parse().expect("--clients"))
        .unwrap_or(16);
    let reqs: usize = opts
        .flag_value("--reqs")
        .map(|v| v.parse().expect("--reqs"))
        .unwrap_or(64);
    let max_batch: usize = opts
        .flag_value("--batch")
        .map(|v| v.parse().expect("--batch"))
        .unwrap_or(16);
    let top_n: usize = opts
        .flag_value("--top")
        .map(|v| v.parse().expect("--top"))
        .unwrap_or(10);

    let preset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&preset, opts.scale, opts.seed);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let model = Mbmissl::new(d.num_items, schema, mbssl_bench::bench_model_config(opts.seed));

    println!(
        "serve load test on {preset}: {} users / {} items, {} clients × {} reqs, top-{top_n}, \
         batch≤{max_batch}, {} worker thread(s)",
        d.num_users,
        d.num_items,
        clients,
        reqs,
        mbssl_tensor::pool::threads()
    );

    // Fresh engine per phase (the server consumes it); compilation is
    // deterministic so every phase serves the identical model.
    // `MBSSL_SERVE_WAIT_US` / `MBSSL_SERVE_QUEUE` tune all three phases;
    // batch width and caching are pinned per phase below.
    let engine = || InferenceModel::compile(&model);
    let base = ServeConfig::from_env();
    let phases = vec![
        run_phase(
            "sequential",
            engine(),
            d,
            ServeConfig { max_batch: 1, workers: 1, cache: false, ..base.clone() },
            clients,
            reqs,
            top_n,
        ),
        run_phase(
            "batched",
            engine(),
            d,
            ServeConfig { max_batch, workers: 2, cache: false, ..base.clone() },
            clients,
            reqs,
            top_n,
        ),
        run_phase(
            "cached",
            engine(),
            d,
            ServeConfig { max_batch, workers: 2, cache: true, ..base.clone() },
            clients,
            reqs,
            top_n,
        ),
    ];

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "phase", "qps", "p50 µs", "p90 µs", "p99 µs", "mean batch", "cache hit%", "wall ms"
    );
    for p in &phases {
        println!(
            "{:<12} {:>9.0} {:>10} {:>10} {:>10} {:>10.2} {:>11.0} {:>10.1}",
            p.phase,
            p.qps,
            p.p50_us,
            p.p90_us,
            p.p99_us,
            p.mean_batch,
            100.0 * p.cache_hit_rate,
            p.wall_ms
        );
    }
    // Server-side stage breakdown for the steady-state configuration.
    let cached = &phases[2];
    println!("stage breakdown ({}):", cached.phase);
    println!(
        "  {:<8} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 µs", "p90 µs", "p99 µs", "max µs"
    );
    for s in &cached.stages {
        println!(
            "  {:<8} {:>9} {:>10} {:>10} {:>10} {:>10}",
            s.stage, s.count, s.p50_us, s.p90_us, s.p99_us, s.max_us
        );
    }
    let batched_speedup = phases[1].qps / phases[0].qps;
    let cached_speedup = phases[2].qps / phases[0].qps;
    println!(
        "serve engine speedup (batch+cache): {cached_speedup:.2}x over single-request \
         serving at {clients} clients (batching alone: {batched_speedup:.2}x)"
    );

    let report = ServeReport {
        dataset: preset,
        num_users: d.num_users,
        num_items: d.num_items,
        top_n,
        threads: mbssl_tensor::pool::threads(),
        phases,
        batched_speedup: (batched_speedup * 100.0).round() / 100.0,
        cached_speedup: (cached_speedup * 100.0).round() / 100.0,
    };
    write_json(&opts, "serve", &report);
}
