//! Figure 6 — cold-start / sequence-length breakdown: test metrics sliced
//! by the user's history length, comparing MBMISSL against the strongest
//! single-behavior baseline (SASRec) and the multi-behavior transformer
//! (MBT). The multi-behavior + SSL advantage should be *largest* for
//! short-history users, where auxiliary behaviors carry most of the
//! signal.

use mbssl_bench::{build_workload, run_model, write_json, ExpOptions};
use mbssl_metrics::aggregate::{bucket_by, metrics_by_group, GroupedMetrics};
use serde::Serialize;

#[derive(Serialize)]
struct ColdStartResults {
    dataset: String,
    model: String,
    groups: Vec<GroupedMetrics>,
    group_sizes: Vec<usize>,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let dataset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&dataset, opts.scale, opts.seed);

    // Bucket test users by their FULL interaction count (the model input
    // is truncated to max_seq_len, so the truncated length would collapse
    // everyone into one bucket). Quartile boundaries adapt to the preset.
    let lengths: Vec<usize> = workload
        .split
        .test
        .iter()
        .map(|t| workload.dataset.sequences[t.user as usize].len())
        .collect();
    let mut sorted = lengths.clone();
    sorted.sort_unstable();
    let q = |f: f64| sorted[(((sorted.len() - 1) as f64) * f) as usize];
    let mut boundaries = vec![q(0.25), q(0.5), q(0.75)];
    boundaries.dedup();
    let groups = bucket_by(&lengths, &boundaries);
    let sizes: Vec<usize> = groups.iter().map(|g| g.indices.len()).collect();
    println!(
        "Figure 6 — cold-start breakdown on {dataset}: group sizes {:?} (labels {:?})",
        sizes,
        groups.iter().map(|g| g.label.clone()).collect::<Vec<_>>()
    );

    let mut all = Vec::new();
    for model in ["SASRec", "MBT", "MBMISSL"] {
        eprintln!("training {model} …");
        let result = run_model(model, &workload, &opts);
        let grouped = metrics_by_group(&result.test_ranks, &groups);
        println!("\n{model}:");
        for gm in &grouped {
            println!(
                "  history {:<8} HR@10={:.4} NDCG@10={:.4} (n={})",
                gm.label, gm.metrics.hr10, gm.metrics.ndcg10, gm.metrics.count
            );
        }
        all.push(ColdStartResults {
            dataset: dataset.clone(),
            model: model.to_string(),
            groups: grouped,
            group_sizes: sizes.clone(),
        });
    }
    write_json(&opts, "fig6_coldstart", &all);
}
