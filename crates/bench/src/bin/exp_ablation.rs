//! Figure 3 — ablation study. Variants of MBMISSL with one mechanism
//! removed, on the taobao-like and tmall-like presets:
//!
//! - `full`            — the complete model;
//! - `w/o hypergraph`  — plain transformer backbone;
//! - `w/o multi-interest` — K = 1;
//! - `w/o SSL`         — all self-supervised weights zero;
//! - `w/o align`       — alignment loss off only;
//! - `w/o aug`         — augmentation contrast off only;
//! - `w/o disent`      — disentanglement off only;
//! - `w/o multi-behavior` — histories filtered to the target behavior.

use mbssl_bench::{
    bench_model_config_for, build_workload, print_table, run_mbmissl_variant, target_only_split,
    write_json, ExpOptions, ModelResult,
};
use serde::Serialize;

#[derive(Serialize)]
struct AblationResults {
    dataset: String,
    rows: Vec<ModelResult>,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let datasets: Vec<&str> = match opts.flag_value("--dataset") {
        Some(d) => vec![match d {
            "taobao-like" => "taobao-like",
            "tmall-like" => "tmall-like",
            "yelp-like" => "yelp-like",
            _ => panic!("unknown preset"),
        }],
        None => vec!["taobao-like", "tmall-like"],
    };

    let mut all = Vec::new();
    for dataset in datasets {
        let workload = build_workload(dataset, opts.scale, opts.seed);
        let base = bench_model_config_for(dataset, opts.seed);
        let mut rows = Vec::new();

        let variants: Vec<(&str, mbssl_core::ModelConfig, bool)> = vec![
            ("full", base.clone(), false),
            ("w/o hypergraph", base.clone().plain_transformer(), false),
            ("w/o multi-interest", base.clone().single_interest(), false),
            ("w/o SSL", base.clone().without_ssl(), false),
            (
                "w/o align",
                {
                    let mut c = base.clone();
                    c.lambda_align = 0.0;
                    c
                },
                false,
            ),
            (
                "w/o aug",
                {
                    let mut c = base.clone();
                    c.lambda_aug = 0.0;
                    c
                },
                false,
            ),
            (
                "w/o disent",
                {
                    let mut c = base.clone();
                    c.lambda_disent = 0.0;
                    c
                },
                false,
            ),
            ("w/o multi-behavior", base.clone(), true),
        ];

        for (label, config, filter_behaviors) in variants {
            eprintln!("[{dataset}] ablation: {label} …");
            let result = if filter_behaviors {
                let filtered = target_only_split(&workload.split, workload.dataset.target_behavior);
                run_mbmissl_variant(label, config, &workload, Some(&filtered), &opts)
            } else {
                run_mbmissl_variant(label, config, &workload, None, &opts)
            };
            eprintln!("[{dataset}] {label}: {}", result.metrics.summary());
            rows.push(result);
        }
        print_table(&format!("Figure 3 (ablation) — {dataset}"), &rows);
        all.push(AblationResults {
            dataset: dataset.to_string(),
            rows,
        });
    }
    write_json(&opts, "fig3_ablation", &all);
}
