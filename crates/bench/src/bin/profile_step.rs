//! Direct wall-clock timing of the training step, bypassing criterion:
//! runs warmup + N measured steps and prints items/sec per repeat so
//! run-to-run variance on a loaded box is visible.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_bench::{bench_model_config, build_workload};
use mbssl_core::{BehaviorSchema, Mbmissl, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;

fn main() {
    let batch_size = 64;
    let workload = build_workload("taobao-like", 0.15, 11);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let model = Mbmissl::new(d.num_items, schema, bench_model_config(11));
    let batch: Vec<&TrainInstance> = workload.split.train.iter().take(batch_size).collect();

    let mut rng = StdRng::seed_from_u64(0);
    let step = |rng: &mut StdRng| {
        for p in model.params() {
            p.zero_grad();
        }
        model
            .loss_on_batch(&batch, &workload.sampler, 16, rng)
            .backward();
    };

    // Warmup (also primes the allocator free lists).
    for _ in 0..3 {
        step(&mut rng);
    }

    let repeats: usize = std::env::var("PROFILE_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let steps_per_repeat: usize = 4;
    let mut best = 0.0f64;
    for r in 0..repeats {
        let t0 = Instant::now();
        for _ in 0..steps_per_repeat {
            step(&mut rng);
        }
        let dt = t0.elapsed().as_secs_f64();
        let ips = (batch_size * steps_per_repeat) as f64 / dt;
        if ips > best {
            best = ips;
        }
        println!("repeat {r}: {ips:.1} items/sec");
    }
    println!("best: {best:.1} items/sec");
}
