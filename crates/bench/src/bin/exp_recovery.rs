//! Figure 10 (extension, the quantitative version of the paper line's
//! t-SNE visualization) — interest recovery: how well the K extracted
//! interests recover the simulator's planted user topics, with and without
//! the disentanglement objective.
//!
//! Metrics: head purity (attention mass on each head's dominant topic),
//! topic coverage (fraction of true interests matched by some head), and
//! mean pairwise interest cosine (lower = better separated).

use mbssl_bench::{bench_model_config, write_json, ExpOptions};
use mbssl_core::analysis::{
    interest_recovery, mean_pairwise_cosine, recovery_summary, InterestRecovery,
};
use mbssl_core::{BehaviorSchema, Mbmissl, Trainer};
use mbssl_data::preprocess::{leave_one_out, SplitConfig};
use mbssl_data::sampler::NegativeSampler;
use mbssl_data::synthetic::SyntheticConfig;
use serde::Serialize;

#[derive(Serialize)]
struct RecoveryRow {
    variant: String,
    mean_purity: f64,
    mean_coverage: f64,
    mean_pairwise_cos: f64,
    users: usize,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let generated = SyntheticConfig::taobao_like(opts.seed).scaled(opts.scale).generate();
    let dataset = &generated.dataset;
    let truth = &generated.truth;
    let split = leave_one_out(dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(dataset);
    let true_k = truth.user_interests[0].len();

    println!(
        "Figure 10 — interest recovery on taobao-like (K = {} = planted interest count)",
        true_k
    );
    let mut rows = Vec::new();
    for (variant, config) in [
        ("full", {
            let mut c = bench_model_config(opts.seed);
            c.num_interests = true_k;
            c
        }),
        ("w/o disentanglement", {
            let mut c = bench_model_config(opts.seed);
            c.num_interests = true_k;
            c.lambda_disent = 0.0;
            c
        }),
        ("w/o SSL", {
            let mut c = bench_model_config(opts.seed).without_ssl();
            c.num_interests = true_k;
            c
        }),
    ] {
        eprintln!("training {variant} …");
        let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
        let model = Mbmissl::new(dataset.num_items, schema, config.clone());
        let trainer = Trainer::new(opts.train_config());
        trainer.fit(&model, &split, &sampler);

        let sample: Vec<usize> = (0..dataset.num_users).step_by(3).collect();
        let mut recoveries: Vec<InterestRecovery> = Vec::new();
        let mut cosines = Vec::new();
        for &u in &sample {
            let hist = &dataset.sequences[u];
            if hist.len() < 8 {
                continue;
            }
            if let Some(r) =
                interest_recovery(&model, hist, &truth.item_topic, &truth.user_interests[u])
            {
                recoveries.push(r);
            }
            let z = model.extract_interests(&[hist]);
            cosines.push(mean_pairwise_cosine(&z, config.num_interests, config.dim));
        }
        let summary = recovery_summary(&recoveries);
        let mean_cos = cosines.iter().sum::<f64>() / cosines.len().max(1) as f64;
        println!(
            "{variant:<22} purity={:.3} coverage={:.3} pairwise-cos={:.3} (n={})",
            summary.mean_purity, summary.mean_coverage, mean_cos, summary.users
        );
        rows.push(RecoveryRow {
            variant: variant.to_string(),
            mean_purity: summary.mean_purity,
            mean_coverage: summary.mean_coverage,
            mean_pairwise_cos: mean_cos,
            users: summary.users,
        });
    }
    write_json(&opts, "fig10_recovery", &rows);
}
