//! Figure 9 (extension) — noise robustness: sweep the simulator's
//! click-noise rate and compare MBMISSL with SSL, MBMISSL without SSL, and
//! single-behavior SASRec.
//!
//! This experiment is only possible because the data substrate is a
//! simulator with a controllable noise process; it directly probes the
//! claim that the self-supervised objectives de-noise shallow behaviors.
//! Expected shape: all models degrade as noise grows, and the margin of
//! `with SSL` over `w/o SSL` widens.

use mbssl_bench::{bench_model_config, write_json, ExpOptions, Workload};
use mbssl_baselines::SasRec;
use mbssl_core::{evaluate, BehaviorSchema, Mbmissl, Trainer};
use mbssl_data::preprocess::{leave_one_out, SplitConfig};
use mbssl_data::sampler::{EvalCandidates, NegativeSampler};
use mbssl_data::synthetic::SyntheticConfig;
use serde::Serialize;

#[derive(Serialize)]
struct NoisePoint {
    click_noise: f64,
    model: String,
    hr10: f64,
    ndcg10: f64,
}

fn workload_with_noise(noise: f64, scale: f64, seed: u64) -> Workload {
    let config = SyntheticConfig {
        click_noise: noise,
        ..SyntheticConfig::taobao_like(seed)
    }
    .scaled(scale);
    let dataset = config.generate().dataset;
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let test_candidates = EvalCandidates::build(&split.test, &sampler, 99, seed ^ 0xEA1);
    Workload {
        dataset,
        split,
        sampler,
        test_candidates,
    }
}

fn main() {
    let opts = ExpOptions::parse_args();
    println!("Figure 9 — noise robustness (taobao-like, click-noise sweep)");
    let mut points = Vec::new();
    for &noise in &[0.0f64, 0.15, 0.3, 0.45, 0.6] {
        let w = workload_with_noise(noise, opts.scale, opts.seed);
        let trainer = Trainer::new(opts.train_config());
        let schema = BehaviorSchema::new(w.dataset.behaviors.clone(), w.dataset.target_behavior);

        let configs = [
            ("MBMISSL (with SSL)", bench_model_config(opts.seed)),
            ("MBMISSL (w/o SSL)", bench_model_config(opts.seed).without_ssl()),
        ];
        for (label, cfg) in configs {
            eprintln!("noise {noise}: training {label} …");
            let model = Mbmissl::new(w.dataset.num_items, schema.clone(), cfg);
            trainer.fit(&model, &w.split, &w.sampler);
            let m = evaluate(&model, &w.split.test, &w.test_candidates, 256).aggregate();
            println!("noise={noise:<5} {label:<22} HR@10={:.4} NDCG@10={:.4}", m.hr10, m.ndcg10);
            points.push(NoisePoint {
                click_noise: noise,
                model: label.to_string(),
                hr10: m.hr10,
                ndcg10: m.ndcg10,
            });
        }

        eprintln!("noise {noise}: training SASRec …");
        let sasrec = SasRec::new(w.dataset.num_items, 32, 2, 2, 50, 0.1, opts.seed);
        trainer.fit(&sasrec, &w.split, &w.sampler);
        let m = evaluate(&sasrec, &w.split.test, &w.test_candidates, 256).aggregate();
        println!("noise={noise:<5} {:<22} HR@10={:.4} NDCG@10={:.4}", "SASRec", m.hr10, m.ndcg10);
        points.push(NoisePoint {
            click_noise: noise,
            model: "SASRec".to_string(),
            hr10: m.hr10,
            ndcg10: m.ndcg10,
        });
    }
    write_json(&opts, "fig9_noise", &points);
}
