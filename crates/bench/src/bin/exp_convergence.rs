//! Figure 8 — convergence: validation NDCG@10 per epoch for MBMISSL with
//! and without SSL. The claim to reproduce: SSL regularization improves
//! the level the curve converges to (and typically its stability).

use mbssl_bench::{bench_model_config, build_workload, write_json, ExpOptions};
use mbssl_core::{BehaviorSchema, Mbmissl, TrainConfig, Trainer};
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    label: String,
    epochs: Vec<usize>,
    val_ndcg10: Vec<f64>,
    train_loss: Vec<f32>,
}

fn main() {
    let opts = ExpOptions::parse_args();
    let dataset = opts.flag_value("--dataset").unwrap_or("taobao-like").to_string();
    let workload = build_workload(&dataset, opts.scale, opts.seed);
    let d = &workload.dataset;

    println!("Figure 8 — convergence on {dataset}");
    let mut curves = Vec::new();
    for (label, config) in [
        ("with SSL", bench_model_config(opts.seed)),
        ("w/o SSL", bench_model_config(opts.seed).without_ssl()),
    ] {
        eprintln!("training {label} …");
        let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
        let model = Mbmissl::new(d.num_items, schema, config);
        // No early stopping: we want the full curve.
        let trainer = Trainer::new(TrainConfig {
            epochs: opts.epochs,
            patience: opts.epochs + 1,
            seed: opts.seed,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&model, &workload.split, &workload.sampler);
        let mut curve = Curve {
            label: label.to_string(),
            epochs: Vec::new(),
            val_ndcg10: Vec::new(),
            train_loss: Vec::new(),
        };
        println!("\n{label}:");
        for stat in &report.history {
            if let Some(ndcg) = stat.val_ndcg10 {
                println!(
                    "  epoch {:>3}: loss {:.4}, val NDCG@10 {:.4}",
                    stat.epoch, stat.train_loss, ndcg
                );
                curve.epochs.push(stat.epoch);
                curve.val_ndcg10.push(ndcg);
                curve.train_loss.push(stat.train_loss);
            }
        }
        curves.push(curve);
    }
    write_json(&opts, "fig8_convergence", &curves);
}
