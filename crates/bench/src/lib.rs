//! `mbssl-bench` — the experiment harness.
//!
//! Each `exp_*` binary regenerates one table or figure of the
//! reconstructed evaluation plan (DESIGN.md §4) and writes machine-readable
//! results to `results/*.json`. Shared plumbing lives here: dataset
//! preparation, the model registry, train-and-evaluate drivers, and table
//! rendering.

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use mbssl_baselines::{
    Bert4Rec, BprMf, Cl4SRec, ComiRec, Gru4Rec, ItemKnn, MbGru, Mbt, Pop, SasRec, Stamp,
};
use mbssl_core::config::ExtractorKind;
use mbssl_core::{
    evaluate, BehaviorSchema, Mbmissl, ModelConfig, TrainConfig,
    TrainableRecommender, Trainer,
};
use mbssl_data::preprocess::{leave_one_out, Split, SplitConfig};
use mbssl_data::sampler::{EvalCandidates, NegativeSampler};
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_data::{Dataset, Sequence};
use mbssl_metrics::RankingMetrics;

/// Common CLI options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExpOptions {
    /// Dataset scale factor (1.0 = the preset sizes in DESIGN.md §5).
    pub scale: f64,
    /// Epoch budget for trained models.
    pub epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Random seed driving data generation and training.
    pub seed: u64,
    /// Where JSON results are written.
    pub out_dir: PathBuf,
    /// Extra per-experiment flags (everything not consumed above).
    pub rest: Vec<String>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.15,
            epochs: 12,
            patience: 3,
            seed: 42,
            out_dir: PathBuf::from("results"),
            rest: Vec::new(),
        }
    }
}

impl ExpOptions {
    /// Parses `--scale X --epochs N --patience P --seed S --out DIR`;
    /// `--full` sets paper-scale defaults, `--quick` a smoke-test scale.
    pub fn parse_args() -> ExpOptions {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Testable parser.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> ExpOptions {
        let mut opts = ExpOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => opts.scale = args.next().expect("--scale value").parse().unwrap(),
                "--epochs" => opts.epochs = args.next().expect("--epochs value").parse().unwrap(),
                "--patience" => {
                    opts.patience = args.next().expect("--patience value").parse().unwrap()
                }
                "--seed" => opts.seed = args.next().expect("--seed value").parse().unwrap(),
                "--out" => opts.out_dir = PathBuf::from(args.next().expect("--out value")),
                "--full" => {
                    opts.scale = 1.0;
                    opts.epochs = 40;
                    opts.patience = 5;
                }
                "--quick" => {
                    opts.scale = 0.08;
                    opts.epochs = 6;
                    opts.patience = 2;
                }
                other => opts.rest.push(other.to_string()),
            }
        }
        opts
    }

    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            patience: self.patience,
            seed: self.seed,
            ..TrainConfig::default()
        }
    }

    /// Per-model training configuration: recurrent baselines converge more
    /// slowly, so they get a higher learning rate and more early-stopping
    /// patience (standard per-baseline tuning, applied identically across
    /// experiments).
    pub fn train_config_for(&self, model: &str) -> TrainConfig {
        let mut cfg = self.train_config();
        if matches!(model, "GRU4Rec" | "MB-GRU") {
            cfg.lr = 5e-3;
            cfg.patience = cfg.patience.max(8);
        }
        if model == "MBMISSL" {
            // The SSL-regularized model converges more slowly than plain
            // next-item baselines; double the epoch ceiling and let early
            // stopping decide (every model trains to convergence).
            cfg.epochs *= 2;
        }
        cfg
    }

    /// Value of `--flag <value>` among the unconsumed args.
    pub fn flag_value(&self, flag: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.rest.get(i + 1))
            .map(|s| s.as_str())
    }

    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }
}

/// A fully prepared benchmark workload.
pub struct Workload {
    pub dataset: Dataset,
    pub split: Split,
    pub sampler: NegativeSampler,
    pub test_candidates: EvalCandidates,
}

/// The three dataset presets of the evaluation.
pub const PRESETS: [&str; 3] = ["taobao-like", "tmall-like", "yelp-like"];

/// Builds a preset dataset and its leave-one-out split + candidates.
pub fn build_workload(preset: &str, scale: f64, seed: u64) -> Workload {
    let config = match preset {
        "taobao-like" => SyntheticConfig::taobao_like(seed),
        "tmall-like" => SyntheticConfig::tmall_like(seed),
        "yelp-like" => SyntheticConfig::yelp_like(seed),
        other => panic!("unknown preset {other}; expected one of {PRESETS:?}"),
    }
    .scaled(scale);
    let dataset = config.generate().dataset;
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let test_candidates = EvalCandidates::build(&split.test, &sampler, 99, seed ^ 0xEA1);
    Workload {
        dataset,
        split,
        sampler,
        test_candidates,
    }
}

/// Model identifiers of the comparison table, grouped as in DESIGN.md §4.
pub const TRADITIONAL: [&str; 9] = [
    "POP", "ItemKNN", "BPR-MF", "GRU4Rec", "STAMP", "SASRec", "BERT4Rec", "CL4SRec",
    "ComiRec-SA",
];
pub const MULTI_BEHAVIOR: [&str; 2] = ["MB-GRU", "MBT"];
pub const OURS: &str = "MBMISSL";

/// All comparison models in table order.
pub fn all_models() -> Vec<&'static str> {
    let mut v: Vec<&str> = TRADITIONAL.to_vec();
    v.extend(MULTI_BEHAVIOR);
    v.push(OURS);
    v
}

/// Per-dataset MBMISSL hyperparameters: the interest count follows the
/// validation-selected value for each preset (which coincides with the
/// preset's planted interest count — see Figure 4), the standard
/// per-dataset tuning every paper in this line performs.
pub fn bench_model_config_for(dataset: &str, seed: u64) -> ModelConfig {
    let mut cfg = bench_model_config(seed);
    cfg.num_interests = match dataset {
        "tmall-like" => 3,
        "yelp-like" => 2,
        _ => 4,
    };
    cfg
}

/// Compact model hyperparameters used across experiments (kept modest so
/// CPU training completes; relative comparisons are what matter).
pub fn bench_model_config(seed: u64) -> ModelConfig {
    ModelConfig {
        dim: 32,
        heads: 2,
        num_layers: 1,
        ffn_hidden: 64,
        num_interests: 4,
        extractor_hidden: 32,
        max_seq_len: 50,
        dropout: 0.1,
        seed,
        ..ModelConfig::default()
    }
}

/// Result row of a trained-and-evaluated model.
#[derive(Clone, Debug, Serialize)]
pub struct ModelResult {
    pub model: String,
    pub metrics: RankingMetrics,
    pub train_seconds: f64,
    pub epochs_run: usize,
    pub num_params: usize,
    /// Per-instance target ranks on the test set (significance testing).
    pub test_ranks: Vec<usize>,
}

/// Trains (if trainable) and evaluates one registry model on a workload.
pub fn run_model(name: &str, workload: &Workload, opts: &ExpOptions) -> ModelResult {
    let d = &workload.dataset;
    let seed = opts.seed;
    let start = Instant::now();

    let (metrics, ranks, train_seconds, epochs_run, num_params) = match name {
        "POP" => {
            let model = Pop::fit(&workload.split);
            let pim = evaluate(&model, &workload.split.test, &workload.test_candidates, 256);
            (
                pim.aggregate(),
                pim.ranks,
                start.elapsed().as_secs_f64(),
                0,
                0,
            )
        }
        "ItemKNN" => {
            let model = ItemKnn::fit(&workload.split, 100);
            let pim = evaluate(&model, &workload.split.test, &workload.test_candidates, 256);
            (
                pim.aggregate(),
                pim.ranks,
                start.elapsed().as_secs_f64(),
                0,
                0,
            )
        }
        "BPR-MF" => fit_eval(&BprMf::new(d.num_users, d.num_items, 32, seed), workload, opts, name),
        "GRU4Rec" => fit_eval(&Gru4Rec::new(d.num_items, 32, 50, seed), workload, opts, name),
        "SASRec" => fit_eval(&SasRec::new(d.num_items, 32, 2, 2, 50, 0.1, seed), workload, opts, name),
        "STAMP" => fit_eval(&Stamp::new(d.num_items, 32, 50, seed), workload, opts, name),
        "CL4SRec" => fit_eval(
            &Cl4SRec::new(d.num_items, 32, 2, 2, 50, 0.1, 0.2, seed),
            workload,
            opts,
            name,
        ),
        "BERT4Rec" => fit_eval(
            &Bert4Rec::new(d.num_items, 32, 2, 2, 50, 0.1, seed),
            workload,
            opts,
            name,
        ),
        "ComiRec-SA" => fit_eval(
            &ComiRec::new(d.num_items, 32, 4, ExtractorKind::SelfAttentive, 50, seed),
            workload,
            opts,
            name,
        ),
        "ComiRec-DR" => fit_eval(
            &ComiRec::new(d.num_items, 32, 4, ExtractorKind::DynamicRouting, 50, seed),
            workload,
            opts,
            name,
        ),
        "MB-GRU" => fit_eval(&MbGru::new(d.num_items, 32, 50, seed), workload, opts, name),
        "MBT" => fit_eval(
            &Mbt::new(d.num_items, d.target_behavior, 32, 2, 2, 50, 0.1, seed),
            workload,
            opts,
            name,
        ),
        "MBMISSL" => {
            let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
            fit_eval(
                &Mbmissl::new(d.num_items, schema, bench_model_config_for(&d.name, seed)),
                workload,
                opts,
                name,
            )
        }
        other => panic!("unknown model {other}"),
    };

    ModelResult {
        model: name.to_string(),
        metrics,
        train_seconds,
        epochs_run,
        num_params,
        test_ranks: ranks,
    }
}

/// Fits a trainable model, evaluates on the test set.
fn fit_eval<M: TrainableRecommender>(
    model: &M,
    workload: &Workload,
    opts: &ExpOptions,
    name: &str,
) -> (RankingMetrics, Vec<usize>, f64, usize, usize) {
    let trainer = Trainer::new(opts.train_config_for(name));
    let report = trainer.fit(model, &workload.split, &workload.sampler);
    let pim = evaluate(model, &workload.split.test, &workload.test_candidates, 256);
    (
        pim.aggregate(),
        pim.ranks,
        report.total_seconds,
        report.epochs_run,
        report.num_params,
    )
}

/// Builds, trains, and evaluates an MBMISSL variant with a custom config
/// and (optionally) a custom split — used by ablations and sweeps.
pub fn run_mbmissl_variant(
    label: &str,
    config: ModelConfig,
    workload: &Workload,
    split_override: Option<&Split>,
    opts: &ExpOptions,
) -> ModelResult {
    let split = split_override.unwrap_or(&workload.split);
    let schema = BehaviorSchema::new(
        workload.dataset.behaviors.clone(),
        workload.dataset.target_behavior,
    );
    let model = Mbmissl::new(workload.dataset.num_items, schema, config);
    let trainer = Trainer::new(opts.train_config());
    let report = trainer.fit(&model, split, &workload.sampler);
    // Evaluate on the (possibly filtered) split's own test set with
    // candidates rebuilt for it when it differs from the workload split.
    let (test, candidates_owned);
    let candidates: &EvalCandidates = if split_override.is_some() {
        test = &split.test;
        candidates_owned = EvalCandidates::build(test, &workload.sampler, 99, opts.seed ^ 0xEA1);
        &candidates_owned
    } else {
        test = &workload.split.test;
        &workload.test_candidates
    };
    let pim = evaluate(&model, test, candidates, 256);
    ModelResult {
        model: label.to_string(),
        metrics: pim.aggregate(),
        train_seconds: report.total_seconds,
        epochs_run: report.epochs_run,
        num_params: report.num_params,
        test_ranks: pim.ranks,
    }
}

/// Renders a metric comparison table to stdout.
pub fn print_table(title: &str, rows: &[ModelResult]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "model", "HR@5", "HR@10", "NDCG@5", "NDCG@10", "MRR", "params", "time(s)"
    );
    for r in rows {
        println!(
            "{:<28} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>10} {:>8.1}",
            r.model,
            r.metrics.hr5,
            r.metrics.hr10,
            r.metrics.ndcg5,
            r.metrics.ndcg10,
            r.metrics.mrr,
            r.num_params,
            r.train_seconds
        );
    }
}

/// Writes any serializable result to `<out_dir>/<name>.json`.
pub fn write_json<T: Serialize>(opts: &ExpOptions, name: &str, value: &T) {
    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results");
    println!("[results written to {}]", path.display());
}

/// Restricts every history in a split to the target behavior only —
/// the `w/o multi-behavior` ablation input.
pub fn target_only_split(split: &Split, target: mbssl_data::Behavior) -> Split {
    behavior_subset_split(split, &[target])
}

/// Keeps only events whose behavior is in `keep` (the target behavior must
/// be included). Used by the behavior-contribution experiment.
pub fn behavior_subset_split(split: &Split, keep: &[mbssl_data::Behavior]) -> Split {
    assert!(
        keep.contains(&split.target_behavior),
        "behavior subset must include the target behavior"
    );
    let filter = |s: &Sequence| {
        let mut out = Sequence::new();
        for (&it, &b) in s.items.iter().zip(s.behaviors.iter()) {
            if keep.contains(&b) {
                out.push(it, b);
            }
        }
        out
    };
    Split {
        train: split
            .train
            .iter()
            .map(|t| mbssl_data::preprocess::TrainInstance {
                user: t.user,
                history: filter(&t.history),
                target: t.target,
            })
            .filter(|t| !t.history.is_empty())
            .collect(),
        val: split
            .val
            .iter()
            .map(|t| mbssl_data::preprocess::EvalInstance {
                user: t.user,
                history: filter(&t.history),
                target: t.target,
            })
            .filter(|t| !t.history.is_empty())
            .collect(),
        test: split
            .test
            .iter()
            .map(|t| mbssl_data::preprocess::EvalInstance {
                user: t.user,
                history: filter(&t.history),
                target: t.target,
            })
            .filter(|t| !t.history.is_empty())
            .collect(),
        train_histories: split
            .train_histories
            .iter()
            .map(|(u, h)| (*u, filter(h)))
            .filter(|(_, h)| !h.is_empty())
            .collect(),
        num_items: split.num_items,
        target_behavior: split.target_behavior,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_for_all_presets() {
        for preset in PRESETS {
            let w = build_workload(preset, 0.05, 3);
            assert!(w.dataset.num_users > 0);
            assert!(!w.split.train.is_empty());
            assert_eq!(w.test_candidates.lists.len(), w.split.test.len());
        }
    }

    #[test]
    fn registry_covers_table_models() {
        let names = all_models();
        assert!(names.contains(&"MBMISSL"));
        assert!(names.len() >= 10);
    }

    #[test]
    fn pop_and_knn_run_end_to_end() {
        let w = build_workload("yelp-like", 0.05, 4);
        let opts = ExpOptions::default();
        for name in ["POP", "ItemKNN"] {
            let r = run_model(name, &w, &opts);
            assert_eq!(r.test_ranks.len(), w.split.test.len());
            assert!(r.metrics.hr10 >= 0.0 && r.metrics.hr10 <= 1.0);
        }
    }

    #[test]
    fn target_only_split_strips_auxiliaries() {
        let w = build_workload("taobao-like", 0.05, 5);
        let filtered = target_only_split(&w.split, w.dataset.target_behavior);
        for inst in filtered.train.iter().take(20) {
            assert!(inst
                .history
                .behaviors
                .iter()
                .all(|&b| b == w.dataset.target_behavior));
        }
        assert!(filtered.test.len() <= w.split.test.len());
    }

    #[test]
    fn flag_parsing_helpers() {
        let opts = ExpOptions::parse_from(
            ["--scale", "0.5", "--sweep", "k", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!((opts.scale - 0.5).abs() < 1e-12);
        assert_eq!(opts.flag_value("--sweep"), Some("k"));
        assert!(opts.has_flag("--verbose"));
        assert!(!opts.has_flag("--missing"));
    }

    #[test]
    fn quick_and_full_presets() {
        let q = ExpOptions::parse_from(["--quick".to_string()]);
        let f = ExpOptions::parse_from(["--full".to_string()]);
        assert!(q.scale < f.scale);
        assert!(q.epochs < f.epochs);
    }
}
