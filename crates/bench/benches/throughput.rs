//! End-to-end throughput benchmarks: items/sec through a training step and
//! through leave-one-out evaluation, plus microbenches over the GEMM shapes
//! those passes are made of. Bench names encode how many items one
//! iteration processes (`itemsN`) so `scripts/bench_smoke.sh` can convert
//! the iter/s readings into items/sec.
//!
//! The allocator counters are reset at the start of each bench section and
//! a per-section summary record is appended to `CRITERION_JSON` (picked up
//! by `bench_smoke.sh` as the `allocator` section of
//! `BENCH_throughput.json`), so a section's hit rate reflects that section
//! alone rather than everything run before it.
//!
//! Set `MBSSL_BENCH_ONLY=<substring>` to run only the benches whose name
//! contains the substring (`bench_smoke.sh` uses this for its second,
//! unfused `train_step` pass).
//!
//! With `MBSSL_TRACE` active, per-section telemetry records (span timings,
//! allocator/pool gauges) are also appended to `CRITERION_JSON`;
//! `bench_smoke.sh` runs a third, traced `train_step` pass to populate the
//! `telemetry` section of `BENCH_throughput.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_bench::{bench_model_config, build_workload};
use mbssl_core::{
    evaluate, recommend_top_n_reference, BehaviorSchema, InferenceModel, Mbmissl,
    SequentialRecommender, TrainableRecommender,
};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::EvalCandidates;
use mbssl_data::ItemId;
use mbssl_telemetry as telemetry;
use mbssl_tensor::{alloc, kernels};

const TRAIN_BATCH: usize = 64;
const EVAL_USERS: usize = 256;

/// `MBSSL_BENCH_ONLY` substring filter (the criterion shim has no name
/// filtering of its own). Empty/unset runs everything.
fn bench_enabled(name: &str) -> bool {
    match std::env::var("MBSSL_BENCH_ONLY") {
        Ok(filter) if !filter.is_empty() => name.contains(&filter),
        _ => true,
    }
}

/// Appends the allocator counters accumulated since the last
/// `alloc::reset_stats()` to `CRITERION_JSON`, tagged with the section that
/// just ran.
fn emit_alloc_section(section: &str) {
    let s = alloc::stats();
    println!(
        "alloc[{section}]: hits {} misses {} recycled {} bytes_reused {} hit_rate {:.1}%",
        s.hits,
        s.misses,
        s.recycled,
        s.bytes_reused,
        s.hit_rate_pct()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"alloc_stats\", \"section\": \"{section}\", \"enabled\": {}, \"hits\": {}, \"misses\": {}, \"recycled\": {}, \"bytes_reused\": {}, \"hit_rate_pct\": {:.2}}}",
                    alloc::enabled(),
                    s.hits,
                    s.misses,
                    s.recycled,
                    s.bytes_reused,
                    s.hit_rate_pct()
                );
            }
        }
    }
}

/// Drains the telemetry registry (no-op when `MBSSL_TRACE` is off) and
/// appends one `{"name": "telemetry", ...}` record per span/counter/gauge
/// label to `CRITERION_JSON`, tagged with the section that just ran.
/// `bench_smoke.sh` distills the span records into the `telemetry` table of
/// `BENCH_throughput.json`.
fn emit_telemetry_section(section: &str) {
    let stats = telemetry::drain();
    if stats.is_empty() {
        return;
    }
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    for rec in &stats {
        // record_to_jsonl emits {"kind": ...}; rewrap under a "name" field so
        // the bench-report parser can route it like the alloc_stats records.
        let _ = writeln!(
            file,
            "{{\"name\": \"telemetry\", {}",
            telemetry::record_to_jsonl(rec, section).trim_start_matches('{')
        );
    }
}

fn bench_throughput(c: &mut Criterion) {
    let workload = build_workload("taobao-like", 0.15, 11);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let model = Mbmissl::new(d.num_items, schema, bench_model_config(11));

    let batch: Vec<&TrainInstance> = workload.split.train.iter().take(TRAIN_BATCH).collect();
    let name = format!("throughput_train_step_items{}", batch.len());
    if bench_enabled(&name) {
        alloc::reset_stats();
        c.bench_function(&name, |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| {
                for p in model.params() {
                    p.zero_grad();
                }
                model
                    .loss_on_batch(&batch, &workload.sampler, 16, &mut rng)
                    .backward();
            });
        });
        emit_alloc_section("train_step");
        emit_telemetry_section("train_step");
    }

    let n_eval = workload.split.test.len().min(EVAL_USERS);
    let test = &workload.split.test[..n_eval];
    let candidates = EvalCandidates::build(test, &workload.sampler, 99, 0xEA2);
    let name = format!("throughput_evaluate_items{n_eval}");
    if bench_enabled(&name) {
        alloc::reset_stats();
        c.bench_function(&name, |b| {
            b.iter(|| evaluate(&model, test, &candidates, 64));
        });
        emit_alloc_section("evaluate");
        emit_telemetry_section("evaluate");
    }

    // Serving: full-catalog top-10 for one user, on a full-scale catalog
    // (serving ranks the whole inventory, so unlike the train/eval
    // sections this workload is NOT scaled down; `itemsN` = catalog size
    // and items/sec = catalog items ranked per second). The engine bench
    // compiles ONCE outside the timed loop (pre-packed weights are a
    // serving-startup cost) and then ranks via one prepacked GEMM per
    // request; the graph bench is the pre-engine path, which re-encodes
    // the history for every 512-item score_batch chunk. Their ratio is the
    // PR's headline speedup.
    let recommend_names = [
        "throughput_recommend_top_n_items2400",
        "throughput_recommend_graph_items2400",
        "throughput_recommend_ann_items2400",
        "throughput_recommend_top_n_xl_items24000",
        "throughput_recommend_ann_xl_items24000",
        "index_build_catalog2400",
        "index_build_catalog24000",
    ];
    if recommend_names.iter().any(|n| bench_enabled(n)) {
        let serving = build_workload("taobao-like", 1.0, 11);
        let sd = &serving.dataset;
        let schema = BehaviorSchema::new(sd.behaviors.clone(), sd.target_behavior);
        let serving_model = Mbmissl::new(sd.num_items, schema, bench_model_config(11));
        let history = &serving.split.test[0].history;
        let exclude: std::collections::HashSet<ItemId> = history.items.iter().copied().collect();
        let catalog = sd.num_items;
        let name = format!("throughput_recommend_top_n_items{catalog}");
        if bench_enabled(&name) {
            alloc::reset_stats();
            let engine = serving_model
                .prepare_inference()
                .expect("benches run with the engine enabled");
            c.bench_function(&name, |b| {
                b.iter(|| {
                    engine
                        .recommend_catalog(black_box(history), catalog, 10, &exclude)
                        .expect("engine has a catalog path")
                });
            });
            emit_alloc_section("recommend");
            emit_telemetry_section("recommend");
        }
        let name = format!("throughput_recommend_graph_items{catalog}");
        if bench_enabled(&name) {
            alloc::reset_stats();
            c.bench_function(&name, |b| {
                b.iter(|| {
                    recommend_top_n_reference(
                        &serving_model,
                        black_box(history),
                        catalog,
                        10,
                        &exclude,
                        512,
                    )
                });
            });
            emit_alloc_section("recommend_graph");
            emit_telemetry_section("recommend_graph");
        }

        // Two-stage retrieval (DESIGN.md §14): IVF probe + candidate
        // re-rank vs the exhaustive one-GEMM ranking, on the full-scale
        // catalog and on a 10x synthetic catalog where the asymptotics
        // actually show. `index_build_catalogN` rows carry the one-off
        // k-means build cost (no `itemsN` suffix: items/sec there is
        // builds/sec, and ns_per_iter is the build time itself).
        let name = format!("throughput_recommend_ann_items{catalog}");
        if bench_enabled(&name) {
            alloc::reset_stats();
            let mut engine = InferenceModel::compile(&serving_model);
            let index = engine.build_index(11);
            engine.attach_index(index).expect("index geometry matches");
            c.bench_function(&name, |b| {
                b.iter(|| {
                    engine
                        .recommend_catalog(black_box(history), catalog, 10, &exclude)
                        .expect("engine has a catalog path")
                });
            });
            emit_alloc_section("recommend_ann");
            emit_telemetry_section("recommend_ann");
        }
        let name = format!("index_build_catalog{catalog}");
        if bench_enabled(&name) {
            let engine = InferenceModel::compile(&serving_model);
            c.bench_function(&name, |b| {
                b.iter(|| black_box(engine.build_index(11)));
            });
        }

        // ~10x catalog: same behavior schema and histories (their item ids
        // all fit), random item table at xl scale. Serving cost is
        // catalog-bound, so this is where retrieve-then-rerank pulls away.
        let xl_catalog = 24_000usize;
        let xl_names = [
            format!("throughput_recommend_top_n_xl_items{xl_catalog}"),
            format!("throughput_recommend_ann_xl_items{xl_catalog}"),
            format!("index_build_catalog{xl_catalog}"),
        ];
        if xl_names.iter().any(|n| bench_enabled(n)) {
            let schema = BehaviorSchema::new(sd.behaviors.clone(), sd.target_behavior);
            let xl_model = Mbmissl::new(xl_catalog, schema, bench_model_config(11));
            if bench_enabled(&xl_names[0]) {
                alloc::reset_stats();
                let engine = InferenceModel::compile(&xl_model);
                c.bench_function(&xl_names[0], |b| {
                    b.iter(|| {
                        engine
                            .recommend_catalog(black_box(history), xl_catalog, 10, &exclude)
                            .expect("engine has a catalog path")
                    });
                });
                emit_alloc_section("recommend_xl");
                emit_telemetry_section("recommend_xl");
            }
            if bench_enabled(&xl_names[1]) {
                alloc::reset_stats();
                let mut engine = InferenceModel::compile(&xl_model);
                let index = engine.build_index(11);
                engine.attach_index(index).expect("index geometry matches");
                c.bench_function(&xl_names[1], |b| {
                    b.iter(|| {
                        engine
                            .recommend_catalog(black_box(history), xl_catalog, 10, &exclude)
                            .expect("engine has a catalog path")
                    });
                });
                emit_alloc_section("recommend_ann_xl");
                emit_telemetry_section("recommend_ann_xl");
            }
            if bench_enabled(&xl_names[2]) {
                let engine = InferenceModel::compile(&xl_model);
                c.bench_function(&xl_names[2], |b| {
                    b.iter(|| black_box(engine.build_index(11)));
                });
            }
        }
    }
}

/// Dataset-load throughput (DESIGN.md §16): the TSV parse + 5/3-core path
/// vs the mmap'd `.mbds` open + materialize path, on the same preprocessed
/// data. `itemsN` is the event count, so items/sec reads as events/sec.
/// `dataset_open_mbds` carries the open+validate cost alone (no `itemsN`:
/// ns_per_iter is the figure), which is the zero-copy path's latency when
/// training iterates the columns without materializing a heap Dataset.
fn bench_dataset_load(c: &mut Criterion) {
    use mbssl_data::format::MbdsFile;
    use mbssl_data::io::{load_tsv, save_tsv};
    use mbssl_data::preprocess::k_core;
    use mbssl_data::synthetic::SyntheticConfig;

    if !bench_enabled("dataset_load") && !bench_enabled("dataset_open_mbds") {
        return;
    }
    let dir = std::env::temp_dir().join(format!("mbssl-bench-data-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let tsv = dir.join("bench.tsv");
    let mbds = dir.join("bench.tsv.mbds");
    let raw = SyntheticConfig::taobao_like(11).scaled(0.5).generate().dataset;
    save_tsv(&raw, &tsv).expect("save bench tsv");
    // .mbds files hold preprocessed data by convention, so the TSV leg
    // (parse + k-core) and the .mbds leg (open + materialize) produce the
    // same Dataset — events/sec compares equal work.
    let cored = k_core(&load_tsv(&tsv, raw.target_behavior).expect("load"), 5, 3);
    mbssl_data::format::write_mbds_kcore(&cored, &mbds, 5, 3).expect("write bench mbds");
    let events = cored.num_interactions();

    let name = format!("dataset_load_tsv_items{events}");
    if bench_enabled(&name) {
        c.bench_function(&name, |b| {
            b.iter(|| {
                let d = k_core(
                    &load_tsv(black_box(&tsv), raw.target_behavior).expect("load"),
                    5,
                    3,
                );
                black_box(d.num_interactions())
            });
        });
    }
    let name = format!("dataset_load_mbds_items{events}");
    if bench_enabled(&name) {
        c.bench_function(&name, |b| {
            b.iter(|| {
                let d = MbdsFile::open(black_box(&mbds)).expect("open").to_dataset();
                black_box(d.num_interactions())
            });
        });
    }
    if bench_enabled("dataset_open_mbds") {
        c.bench_function("dataset_open_mbds", |b| {
            b.iter(|| {
                let f = MbdsFile::open(black_box(&mbds)).expect("open");
                black_box(f.num_events())
            });
        });
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The GEMM shapes one encoder/backward pass is made of, with the bench
/// model config (dim 32, ffn 64, batch 64 × seq 50 ⇒ 3200 flattened rows):
/// encoder projections (`nn`), the FFN expansion (`nn`), the weight-gradient
/// reduction (`tn`, long k — the packed-A case), and the data gradient
/// (`nt`).
fn bench_gemm_shapes(c: &mut Criterion) {
    const ROWS: usize = 64 * 50;
    const DIM: usize = 32;
    const FFN: usize = 64;

    const NAMES: [&str; 4] = [
        "gemm_nn_encoder_3200x32x32",
        "gemm_nn_ffn_3200x32x64",
        "gemm_tn_wgrad_32x3200x64",
        "gemm_nt_dgrad_3200x64x32",
    ];
    if !NAMES.iter().any(|n| bench_enabled(n)) {
        return;
    }
    alloc::reset_stats();

    let mut rng = StdRng::seed_from_u64(7);
    let mut fill = |n: usize| -> Vec<f32> {
        use rand::Rng;
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    };

    // Encoder projection: [3200, 32] · [32, 32].
    let (a, b) = (fill(ROWS * DIM), fill(DIM * DIM));
    if bench_enabled(NAMES[0]) {
        c.bench_function(NAMES[0], |bch| {
            let mut out = vec![0.0f32; ROWS * DIM];
            bch.iter(|| {
                out.fill(0.0);
                kernels::gemm_nn(black_box(&a), black_box(&b), &mut out, ROWS, DIM, DIM);
            });
        });
    }

    // FFN expansion: [3200, 32] · [32, 64].
    let (a, b) = (fill(ROWS * DIM), fill(DIM * FFN));
    if bench_enabled(NAMES[1]) {
        c.bench_function(NAMES[1], |bch| {
            let mut out = vec![0.0f32; ROWS * FFN];
            bch.iter(|| {
                out.fill(0.0);
                kernels::gemm_nn(black_box(&a), black_box(&b), &mut out, ROWS, DIM, FFN);
            });
        });
    }

    // Weight gradient: xᵀ·g = [32, 3200]ᵀ-view · [3200, 64] (k = 3200).
    let (a, b) = (fill(ROWS * DIM), fill(ROWS * FFN));
    if bench_enabled(NAMES[2]) {
        c.bench_function(NAMES[2], |bch| {
            let mut out = vec![0.0f32; DIM * FFN];
            bch.iter(|| {
                out.fill(0.0);
                kernels::gemm_tn(black_box(&a), black_box(&b), &mut out, DIM, ROWS, FFN);
            });
        });
    }

    // Data gradient: g·Wᵀ = [3200, 64] · [32, 64]ᵀ.
    let (a, b) = (fill(ROWS * FFN), fill(DIM * FFN));
    if bench_enabled(NAMES[3]) {
        c.bench_function(NAMES[3], |bch| {
            let mut out = vec![0.0f32; ROWS * DIM];
            bch.iter(|| {
                out.fill(0.0);
                kernels::gemm_nt(black_box(&a), black_box(&b), &mut out, ROWS, FFN, DIM);
            });
        });
    }

    emit_alloc_section("gemm_shapes");
    emit_telemetry_section("gemm_shapes");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput, bench_dataset_load, bench_gemm_shapes
}
criterion_main!(benches);
