//! End-to-end throughput benchmarks: items/sec through a training step and
//! through leave-one-out evaluation, plus microbenches over the GEMM shapes
//! those passes are made of. Bench names encode how many items one
//! iteration processes (`itemsN`) so `scripts/bench_smoke.sh` can convert
//! the iter/s readings into items/sec.
//!
//! After all benchmarks run, a summary line with the buffer-recycling
//! allocator's counters is appended to `CRITERION_JSON` (picked up by
//! `bench_smoke.sh` as the `allocator` section of `BENCH_throughput.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_bench::{bench_model_config, build_workload};
use mbssl_core::{evaluate, BehaviorSchema, Mbmissl, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::EvalCandidates;
use mbssl_tensor::{alloc, kernels};

const TRAIN_BATCH: usize = 64;
const EVAL_USERS: usize = 256;

fn bench_throughput(c: &mut Criterion) {
    let workload = build_workload("taobao-like", 0.15, 11);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let model = Mbmissl::new(d.num_items, schema, bench_model_config(11));

    let batch: Vec<&TrainInstance> = workload.split.train.iter().take(TRAIN_BATCH).collect();
    let name = format!("throughput_train_step_items{}", batch.len());
    c.bench_function(&name, |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            for p in model.params() {
                p.zero_grad();
            }
            model
                .loss_on_batch(&batch, &workload.sampler, 16, &mut rng)
                .backward();
        });
    });

    let n_eval = workload.split.test.len().min(EVAL_USERS);
    let test = &workload.split.test[..n_eval];
    let candidates = EvalCandidates::build(test, &workload.sampler, 99, 0xEA2);
    let name = format!("throughput_evaluate_items{n_eval}");
    c.bench_function(&name, |b| {
        b.iter(|| evaluate(&model, test, &candidates, 64));
    });
}

/// The GEMM shapes one encoder/backward pass is made of, with the bench
/// model config (dim 32, ffn 64, batch 64 × seq 50 ⇒ 3200 flattened rows):
/// encoder projections (`nn`), the FFN expansion (`nn`), the weight-gradient
/// reduction (`tn`, long k — the packed-A case), and the data gradient
/// (`nt`).
fn bench_gemm_shapes(c: &mut Criterion) {
    const ROWS: usize = 64 * 50;
    const DIM: usize = 32;
    const FFN: usize = 64;

    let mut rng = StdRng::seed_from_u64(7);
    let mut fill = |n: usize| -> Vec<f32> {
        use rand::Rng;
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    };

    // Encoder projection: [3200, 32] · [32, 32].
    let (a, b) = (fill(ROWS * DIM), fill(DIM * DIM));
    c.bench_function("gemm_nn_encoder_3200x32x32", |bch| {
        let mut out = vec![0.0f32; ROWS * DIM];
        bch.iter(|| {
            out.fill(0.0);
            kernels::gemm_nn(black_box(&a), black_box(&b), &mut out, ROWS, DIM, DIM);
        });
    });

    // FFN expansion: [3200, 32] · [32, 64].
    let (a, b) = (fill(ROWS * DIM), fill(DIM * FFN));
    c.bench_function("gemm_nn_ffn_3200x32x64", |bch| {
        let mut out = vec![0.0f32; ROWS * FFN];
        bch.iter(|| {
            out.fill(0.0);
            kernels::gemm_nn(black_box(&a), black_box(&b), &mut out, ROWS, DIM, FFN);
        });
    });

    // Weight gradient: xᵀ·g = [32, 3200]ᵀ-view · [3200, 64] (k = 3200).
    let (a, b) = (fill(ROWS * DIM), fill(ROWS * FFN));
    c.bench_function("gemm_tn_wgrad_32x3200x64", |bch| {
        let mut out = vec![0.0f32; DIM * FFN];
        bch.iter(|| {
            out.fill(0.0);
            kernels::gemm_tn(black_box(&a), black_box(&b), &mut out, DIM, ROWS, FFN);
        });
    });

    // Data gradient: g·Wᵀ = [3200, 64] · [32, 64]ᵀ.
    let (a, b) = (fill(ROWS * FFN), fill(DIM * FFN));
    c.bench_function("gemm_nt_dgrad_3200x64x32", |bch| {
        let mut out = vec![0.0f32; ROWS * DIM];
        bch.iter(|| {
            out.fill(0.0);
            kernels::gemm_nt(black_box(&a), black_box(&b), &mut out, ROWS, FFN, DIM);
        });
    });
}

/// Appends the allocator counters accumulated over the whole bench run to
/// `CRITERION_JSON` (no timing; `bench_smoke.sh` routes this record into a
/// separate section of the report).
fn emit_alloc_stats(_c: &mut Criterion) {
    let s = alloc::stats();
    println!(
        "alloc: hits {} misses {} recycled {} bytes_reused {} hit_rate {:.1}%",
        s.hits,
        s.misses,
        s.recycled,
        s.bytes_reused,
        s.hit_rate_pct()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"alloc_stats\", \"enabled\": {}, \"hits\": {}, \"misses\": {}, \"recycled\": {}, \"bytes_reused\": {}, \"hit_rate_pct\": {:.2}}}",
                    alloc::enabled(),
                    s.hits,
                    s.misses,
                    s.recycled,
                    s.bytes_reused,
                    s.hit_rate_pct()
                );
            }
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput, bench_gemm_shapes, emit_alloc_stats
}
criterion_main!(benches);
