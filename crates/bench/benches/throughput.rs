//! End-to-end throughput benchmarks: items/sec through a training step and
//! through leave-one-out evaluation. Bench names encode how many items one
//! iteration processes (`itemsN`) so `scripts/bench_smoke.sh` can convert
//! the iter/s readings into items/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_bench::{bench_model_config, build_workload};
use mbssl_core::{evaluate, BehaviorSchema, Mbmissl, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::EvalCandidates;

const TRAIN_BATCH: usize = 64;
const EVAL_USERS: usize = 256;

fn bench_throughput(c: &mut Criterion) {
    let workload = build_workload("taobao-like", 0.15, 11);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let model = Mbmissl::new(d.num_items, schema, bench_model_config(11));

    let batch: Vec<&TrainInstance> = workload.split.train.iter().take(TRAIN_BATCH).collect();
    let name = format!("throughput_train_step_items{}", batch.len());
    c.bench_function(&name, |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            for p in model.params() {
                p.zero_grad();
            }
            model
                .loss_on_batch(&batch, &workload.sampler, 16, &mut rng)
                .backward();
        });
    });

    let n_eval = workload.split.test.len().min(EVAL_USERS);
    let test = &workload.split.test[..n_eval];
    let candidates = EvalCandidates::build(test, &workload.sampler, 99, 0xEA2);
    let name = format!("throughput_evaluate_items{n_eval}");
    c.bench_function(&name, |b| {
        b.iter(|| evaluate(&model, test, &candidates, 64));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
