//! Criterion benchmarks for NN layers: attention, transformer block,
//! hypergraph transformer layer, GRU, and the interest extractors.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::config::{ExtractorKind, ModelConfig};
use mbssl_core::interest::InterestExtractor;
use mbssl_hypergraph::{build_batch_incidence, HypergraphConfig, HypergraphTransformerLayer};
use mbssl_tensor::nn::{Gru, Mode, MultiHeadAttention, TransformerBlock};
use mbssl_tensor::{init, no_grad, Tensor};

const B: usize = 32;
const L: usize = 50;
const D: usize = 32;

fn input(rng: &mut StdRng) -> Tensor {
    init::normal([B, L, D], 0.0, 1.0, rng)
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let attn = MultiHeadAttention::new(D, 2, 0.0, &mut rng);
    let x = input(&mut rng);
    c.bench_function("mha_forward_32x50x32", |b| {
        b.iter(|| no_grad(|| attn.forward_self(&x, None, &mut Mode::Eval)));
    });
}

fn bench_transformer_block(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let block = TransformerBlock::new(D, 2, D * 2, 0.0, &mut rng);
    let x = input(&mut rng);
    c.bench_function("transformer_block_forward", |b| {
        b.iter(|| no_grad(|| block.forward(&x, None, &mut Mode::Eval)));
    });
    let x2 = input(&mut rng).requires_grad();
    c.bench_function("transformer_block_fwd_bwd", |b| {
        b.iter(|| {
            x2.zero_grad();
            block
                .forward(&x2, None, &mut Mode::Eval)
                .sum_all()
                .backward();
        });
    });
}

fn demo_incidence() -> mbssl_hypergraph::BatchIncidence {
    let mut items = Vec::new();
    let mut behaviors = Vec::new();
    let mut valid = Vec::new();
    for b in 0..B {
        for t in 0..L {
            items.push(1 + (t * 3 + b) % 40);
            behaviors.push(if t % 4 == 0 { 4 } else { 1 });
            valid.push(1.0);
        }
    }
    let cfg = HypergraphConfig {
        behavior_tags: vec![1, 4],
        window: 8,
        max_item_edges: 4,
    };
    build_batch_incidence(&cfg, &items, &behaviors, &valid, B, L, 5)
}

fn bench_hypergraph_layer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let layer = HypergraphTransformerLayer::new(D, 2, D * 2, 0.0, 5, &mut rng);
    let incidence = demo_incidence();
    let x = input(&mut rng);
    c.bench_function("hypergraph_layer_forward", |b| {
        b.iter(|| no_grad(|| layer.forward(&x, &incidence, &mut Mode::Eval)));
    });
}

fn bench_incidence_build(c: &mut Criterion) {
    c.bench_function("incidence_build_32x50", |b| {
        b.iter(demo_incidence);
    });
}

fn bench_gru(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let gru = Gru::new(D, D, &mut rng);
    let x = input(&mut rng);
    let valid = Tensor::ones([B, L]);
    c.bench_function("gru_forward_32x50x32", |b| {
        b.iter(|| no_grad(|| gru.forward(&x, &valid)));
    });
}

fn bench_extractors(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = |kind| ModelConfig {
        dim: D,
        extractor_hidden: D,
        num_interests: 4,
        max_seq_len: L,
        extractor: kind,
        ..ModelConfig::default()
    };
    let sa = InterestExtractor::new(&cfg(ExtractorKind::SelfAttentive), &mut rng);
    let dr = InterestExtractor::new(&cfg(ExtractorKind::DynamicRouting), &mut rng);
    let x = input(&mut rng);
    let allowed = vec![1.0f32; B * L];
    c.bench_function("interest_self_attentive", |b| {
        b.iter(|| no_grad(|| sa.forward(&x, &allowed)));
    });
    c.bench_function("interest_dynamic_routing", |b| {
        b.iter(|| no_grad(|| dr.forward(&x, &allowed)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_attention, bench_transformer_block, bench_hypergraph_layer,
              bench_incidence_build, bench_gru, bench_extractors
}
criterion_main!(benches);
