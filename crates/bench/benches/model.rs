//! Criterion benchmarks at the model level: full MBMISSL training step
//! (forward + backward) and batched candidate scoring, with SASRec as the
//! baseline reference — the microscopic version of Table 5.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_baselines::SasRec;
use mbssl_bench::{bench_model_config, build_workload};
use mbssl_core::{BehaviorSchema, Mbmissl, SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::ItemId;

fn bench_models(c: &mut Criterion) {
    let workload = build_workload("taobao-like", 0.08, 9);
    let d = &workload.dataset;
    let schema = BehaviorSchema::new(d.behaviors.clone(), d.target_behavior);
    let mbmissl = Mbmissl::new(d.num_items, schema, bench_model_config(9));
    let sasrec = SasRec::new(d.num_items, 32, 2, 2, 50, 0.1, 9);

    let batch: Vec<&TrainInstance> = workload.split.train.iter().take(32).collect();

    c.bench_function("mbmissl_train_step_b32", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            for p in mbmissl.params() {
                p.zero_grad();
            }
            mbmissl
                .loss_on_batch(&batch, &workload.sampler, 32, &mut rng)
                .backward();
        });
    });

    c.bench_function("sasrec_train_step_b32", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            for p in sasrec.params() {
                p.zero_grad();
            }
            sasrec
                .loss_on_batch(&batch, &workload.sampler, 32, &mut rng)
                .backward();
        });
    });

    let n_eval = workload.split.test.len().min(64);
    let histories: Vec<_> = workload.split.test[..n_eval]
        .iter()
        .map(|t| &t.history)
        .collect();
    let cand_refs: Vec<&[ItemId]> = workload.test_candidates.lists[..n_eval]
        .iter()
        .map(|l| l.as_slice())
        .collect();

    c.bench_function("mbmissl_score_64_users_x100", |b| {
        b.iter(|| mbmissl.score_batch(&histories, &cand_refs));
    });

    c.bench_function("sasrec_score_64_users_x100", |b| {
        b.iter(|| sasrec.score_batch(&histories, &cand_refs));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_models
}
criterion_main!(benches);
