//! Criterion micro-benchmarks for the raw compute kernels — the costs
//! underneath every entry of the efficiency table (Table 5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mbssl_tensor::kernels;

fn seq(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 7 + 3) % 13) as f32 * 0.25 - 1.0).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nn");
    for &n in &[32usize, 64, 128, 256] {
        let a = seq(n * n);
        let b = seq(n * n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, &n| {
            let mut out = vec![0.0f32; n * n];
            bencher.iter(|| {
                out.fill(0.0);
                kernels::gemm_nn(black_box(&a), black_box(&b), &mut out, n, n, n);
            });
        });
    }
    group.finish();
}

fn bench_gemm_variants(c: &mut Criterion) {
    let n = 128usize;
    let a = seq(n * n);
    let b = seq(n * n);
    let mut group = c.benchmark_group("gemm_variants_128");
    group.bench_function("nn", |bencher| {
        let mut out = vec![0.0f32; n * n];
        bencher.iter(|| {
            out.fill(0.0);
            kernels::gemm_nn(&a, &b, &mut out, n, n, n);
        });
    });
    group.bench_function("nt", |bencher| {
        let mut out = vec![0.0f32; n * n];
        bencher.iter(|| {
            out.fill(0.0);
            kernels::gemm_nt(&a, &b, &mut out, n, n, n);
        });
    });
    group.bench_function("tn", |bencher| {
        let mut out = vec![0.0f32; n * n];
        bencher.iter(|| {
            out.fill(0.0);
            kernels::gemm_tn(&a, &b, &mut out, n, n, n);
        });
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let rows = 256usize;
    let cols = 100usize;
    let data = seq(rows * cols);
    c.bench_function("softmax_rows_256x100", |bencher| {
        bencher.iter(|| {
            let mut buf = data.clone();
            kernels::softmax_rows(black_box(&mut buf), cols);
            buf
        });
    });
}

fn bench_transpose(c: &mut Criterion) {
    let (r, cc) = (256usize, 128usize);
    let src = seq(r * cc);
    c.bench_function("transpose_256x128", |bencher| {
        let mut out = vec![0.0f32; r * cc];
        bencher.iter(|| {
            kernels::transpose(black_box(&src), &mut out, r, cc);
        });
    });
}

fn bench_dot(c: &mut Criterion) {
    let a = seq(4096);
    let b = seq(4096);
    c.bench_function("dot_4096", |bencher| {
        bencher.iter(|| kernels::dot(black_box(&a), black_box(&b)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_gemm_variants, bench_softmax, bench_transpose, bench_dot
}
criterion_main!(benches);
