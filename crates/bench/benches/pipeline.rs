//! Criterion benchmarks for the data pipeline: synthetic generation,
//! splitting, negative sampling, batch encoding, augmentation, metrics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_data::augment::{default_ops, random_augment};
use mbssl_data::preprocess::{leave_one_out, SplitConfig, TrainInstance};
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy};
use mbssl_data::synthetic::SyntheticConfig;
use mbssl_metrics::RankingMetrics;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("synthetic_generate_scale0.1", |b| {
        b.iter(|| SyntheticConfig::taobao_like(1).scaled(0.1).generate());
    });
}

fn bench_split(c: &mut Criterion) {
    let dataset = SyntheticConfig::taobao_like(2).scaled(0.2).generate().dataset;
    c.bench_function("leave_one_out_scale0.2", |b| {
        b.iter(|| leave_one_out(black_box(&dataset), &SplitConfig::default()));
    });
}

fn bench_sampling_and_batching(c: &mut Criterion) {
    let dataset = SyntheticConfig::taobao_like(3).scaled(0.2).generate().dataset;
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let instances: Vec<&TrainInstance> = split.train.iter().take(128).collect();

    c.bench_function("negative_sample_128x64", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            for inst in &instances {
                sampler.sample_n(inst.user, inst.target, 64, NegativeStrategy::Uniform, &mut rng);
            }
        });
    });

    c.bench_function("batch_encode_128", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| Batch::encode(&instances, &sampler, 64, NegativeStrategy::Uniform, &mut rng));
    });
}

fn bench_augmentation(c: &mut Criterion) {
    let dataset = SyntheticConfig::taobao_like(4).scaled(0.1).generate().dataset;
    let ops = default_ops();
    let seqs: Vec<_> = dataset.sequences.iter().take(128).collect();
    c.bench_function("augment_128_sequences", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            for s in &seqs {
                black_box(random_augment(s, &ops, &mut rng));
            }
        });
    });
}

fn bench_metrics(c: &mut Criterion) {
    let lists: Vec<Vec<f32>> = (0..1000)
        .map(|i| (0..100).map(|j| ((i * 31 + j * 17) % 97) as f32).collect())
        .collect();
    c.bench_function("ranking_metrics_1000x100", |b| {
        b.iter(|| RankingMetrics::from_score_lists(black_box(&lists)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generation, bench_split, bench_sampling_and_batching,
              bench_augmentation, bench_metrics
}
criterion_main!(benches);
