//! SASRec: self-attentive sequential recommendation (Kang & McAuley,
//! 2018). Causal transformer over the item sequence, last-state readout.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{
    causal_mask, key_padding_mask, Embedding, Mode, Module, ParamMap, TransformerBlock,
};
use mbssl_tensor::{no_grad, Tensor};

pub struct SasRec {
    item_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    heads: usize,
    dim: usize,
    max_seq_len: usize,
    dropout: f32,
}

impl SasRec {
    pub fn new(
        num_items: usize,
        dim: usize,
        heads: usize,
        num_layers: usize,
        max_seq_len: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        SasRec {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            pos_emb: Embedding::new(max_seq_len, dim, &mut rng),
            blocks: (0..num_layers)
                .map(|_| TransformerBlock::new(dim, heads, dim * 2, dropout, &mut rng))
                .collect(),
            heads,
            dim,
            max_seq_len,
            dropout,
        }
    }

    fn user_vec(&self, batch: &Batch, mode: &mut Mode) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        let item = self.item_emb.forward_seq(&batch.items, b, l);
        let positions: Vec<usize> = (0..b * l).map(|i| i % l).collect();
        let pos = self.pos_emb.forward_seq(&positions, b, l);
        let mut h = mode.dropout(&item.add(&pos), self.dropout);
        // Combine causal + key-padding masks (1 = blocked).
        let causal = causal_mask(l);
        let pad = key_padding_mask(&batch.valid, b, self.heads, l);
        let mask = pad.maximum(&causal);
        for block in &self.blocks {
            h = block.forward(&h, Some(&mask), mode);
        }
        crate::common::last_valid_state(&h, batch)
    }
}

impl SequentialRecommender for SasRec {
    fn name(&self) -> String {
        format!("SASRec(d={}, L={})", self.dim, self.blocks.len())
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let user = self.user_vec(&batch, &mut Mode::Eval);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for SasRec {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("sasrec.item", &mut map);
        self.pos_emb.collect_params("sasrec.pos", &mut map);
        for (i, b) in self.blocks.iter().enumerate() {
            b.collect_params(&format!("sasrec.block{i}"), &mut map);
        }
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let user = self.user_vec(batch, &mut Mode::Train(rng));
        crate::common::sampled_softmax_loss(&user, &self.item_emb, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;

    #[test]
    fn eval_scoring_deterministic_despite_dropout_config() {
        let model = SasRec::new(20, 8, 2, 2, 10, 0.5, 1);
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        h.push(2, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        assert_eq!(
            model.score_batch(&[&h], &[&cands]),
            model.score_batch(&[&h], &[&cands])
        );
    }

    #[test]
    fn order_sensitivity() {
        let model = SasRec::new(20, 8, 2, 1, 10, 0.0, 2);
        let mut a = Sequence::new();
        a.push(1, Behavior::Click);
        a.push(2, Behavior::Click);
        a.push(3, Behavior::Click);
        let mut b = Sequence::new();
        b.push(3, Behavior::Click);
        b.push(2, Behavior::Click);
        b.push(1, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        assert_ne!(model.score_batch(&[&a], &[&cands]), model.score_batch(&[&b], &[&cands]));
    }

    #[test]
    fn behavior_blind() {
        // SASRec must ignore behavior labels entirely.
        let model = SasRec::new(20, 8, 2, 1, 10, 0.0, 3);
        let mut a = Sequence::new();
        a.push(1, Behavior::Click);
        a.push(2, Behavior::Click);
        let mut b = Sequence::new();
        b.push(1, Behavior::Purchase);
        b.push(2, Behavior::Favorite);
        let cands: Vec<ItemId> = (1..=5).collect();
        assert_eq!(model.score_batch(&[&a], &[&cands]), model.score_batch(&[&b], &[&cands]));
    }

    #[test]
    fn gradients_reach_blocks() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::yelp_like(101).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = SasRec::new(g.dataset.num_items, 8, 2, 1, 20, 0.0, 4);
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        model.loss_on_batch(&refs, &sampler, 4, &mut rng).backward();
        for (name, t) in model.named_params().iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
