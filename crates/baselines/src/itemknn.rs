//! Item-kNN: cosine similarity over item co-occurrence in user histories.

use std::collections::HashMap;

use mbssl_core::SequentialRecommender;
use mbssl_data::preprocess::Split;
use mbssl_data::{ItemId, Sequence};

/// Classic neighborhood baseline: `score(candidate | history) = Σ_{j∈hist}
/// sim(candidate, j)` with cosine-normalized co-occurrence counts and a
/// per-item neighbor cap.
pub struct ItemKnn {
    /// Sparse similarity rows: item → top-k (neighbor, sim).
    sims: HashMap<ItemId, Vec<(ItemId, f32)>>,
    k: usize,
}

impl ItemKnn {
    /// Fits co-occurrence similarities from training histories, keeping the
    /// `k` most similar neighbors per item.
    pub fn fit(split: &Split, k: usize) -> Self {
        // Count item occurrences and pairwise co-occurrences per user
        // (set semantics within a user: repeated views count once).
        let mut occurrence: HashMap<ItemId, f32> = HashMap::new();
        let mut cooc: HashMap<(ItemId, ItemId), f32> = HashMap::new();
        for (_, hist) in &split.train_histories {
            let mut unique: Vec<ItemId> = hist.items.clone();
            unique.sort_unstable();
            unique.dedup();
            for &a in &unique {
                *occurrence.entry(a).or_insert(0.0) += 1.0;
            }
            for i in 0..unique.len() {
                for j in (i + 1)..unique.len() {
                    *cooc.entry((unique[i], unique[j])).or_insert(0.0) += 1.0;
                }
            }
        }
        // Cosine normalization.
        let mut rows: HashMap<ItemId, Vec<(ItemId, f32)>> = HashMap::new();
        for (&(a, b), &c) in &cooc {
            let denom = (occurrence[&a] * occurrence[&b]).sqrt();
            if denom <= 0.0 {
                continue;
            }
            let sim = c / denom;
            rows.entry(a).or_default().push((b, sim));
            rows.entry(b).or_default().push((a, sim));
        }
        for list in rows.values_mut() {
            list.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
            list.truncate(k);
        }
        ItemKnn { sims: rows, k }
    }

    /// Similarity between two items (0 when not neighbors).
    pub fn sim(&self, a: ItemId, b: ItemId) -> f32 {
        self.sims
            .get(&a)
            .and_then(|row| row.iter().find(|(n, _)| *n == b).map(|(_, s)| *s))
            .unwrap_or(0.0)
    }
}

impl SequentialRecommender for ItemKnn {
    fn name(&self) -> String {
        format!("ItemKNN(k={})", self.k)
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        histories
            .iter()
            .zip(candidates.iter())
            .map(|(hist, list)| {
                // Recency-weighted: later history items count more.
                let n = hist.items.len().max(1) as f32;
                let mut weights: HashMap<ItemId, f32> = HashMap::new();
                for (t, &it) in hist.items.iter().enumerate() {
                    let w = 0.5 + 0.5 * (t as f32 + 1.0) / n;
                    let e = weights.entry(it).or_insert(0.0);
                    *e = e.max(w);
                }
                list.iter()
                    .map(|&cand| {
                        let mut score = 0.0f32;
                        if let Some(row) = self.sims.get(&cand) {
                            for &(neighbor, sim) in row {
                                if let Some(&w) = weights.get(&neighbor) {
                                    score += sim * w;
                                }
                            }
                        }
                        score
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::preprocess::{leave_one_out, SplitConfig};
    use mbssl_data::synthetic::SyntheticConfig;
    use mbssl_data::Behavior;

    #[test]
    fn similarity_is_symmetric() {
        let g = SyntheticConfig::taobao_like(71).scaled(0.08).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let knn = ItemKnn::fit(&split, 50);
        let mut checked = 0;
        for (&a, row) in knn.sims.iter().take(30) {
            for &(b, s) in row.iter().take(3) {
                let back = knn.sim(b, a);
                // b's row may have truncated a out, but when present the
                // value must match.
                if back > 0.0 {
                    assert!((back - s).abs() < 1e-6);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no symmetric pairs verified");
    }

    #[test]
    fn neighbor_cap_respected() {
        let g = SyntheticConfig::taobao_like(72).scaled(0.08).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let knn = ItemKnn::fit(&split, 5);
        assert!(knn.sims.values().all(|row| row.len() <= 5));
    }

    #[test]
    fn cooccurring_items_score_higher() {
        let g = SyntheticConfig::taobao_like(73).scaled(0.1).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let knn = ItemKnn::fit(&split, 100);
        // Take a user's history; its own co-occurring items should score
        // above a random unseen item on average.
        let mut better = 0;
        let mut worse = 0;
        for (_, hist) in split.train_histories.iter().take(50) {
            if hist.items.len() < 4 {
                continue;
            }
            let cand_pos = *hist.items.last().unwrap();
            let cand_neg: ItemId = (g.dataset.num_items as ItemId).min(cand_pos + 517) % (g.dataset.num_items as ItemId) + 1;
            let mut h = Sequence::new();
            for (&it, &b) in hist.items[..hist.items.len() - 1]
                .iter()
                .zip(hist.behaviors.iter())
            {
                h.push(it, b);
            }
            let scores = knn.score_batch(&[&h], &[&[cand_pos, cand_neg]]);
            if scores[0][0] > scores[0][1] {
                better += 1;
            } else if scores[0][0] < scores[0][1] {
                worse += 1;
            }
        }
        assert!(better > worse, "knn not predictive: {better} vs {worse}");
    }

    #[test]
    fn unknown_items_score_zero() {
        let g = SyntheticConfig::yelp_like(74).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let knn = ItemKnn::fit(&split, 10);
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let scores = knn.score_batch(&[&h], &[&[999_999]]);
        assert_eq!(scores[0][0], 0.0);
    }
}
