//! GRU4Rec: session-based recurrent recommendation (Hidasi et al., 2015),
//! adapted to the shared sampled-softmax protocol. Single-behavior: it
//! consumes the item sequence and ignores behavior types.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{Embedding, Gru, Module, ParamMap};
use mbssl_tensor::{no_grad, Tensor};

pub struct Gru4Rec {
    item_emb: Embedding,
    gru: Gru,
    dim: usize,
    max_seq_len: usize,
}

impl Gru4Rec {
    pub fn new(num_items: usize, dim: usize, max_seq_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Gru4Rec {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            gru: Gru::new(dim, dim, &mut rng),
            dim,
            max_seq_len,
        }
    }

    fn user_vec(&self, batch: &Batch) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        let x = self.item_emb.forward_seq(&batch.items, b, l);
        let valid = Tensor::from_vec(batch.valid.clone(), [b, l]);
        let (_, last) = self.gru.forward(&x, &valid);
        last
    }
}

impl SequentialRecommender for Gru4Rec {
    fn name(&self) -> String {
        format!("GRU4Rec(d={})", self.dim)
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let user = self.user_vec(&batch);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for Gru4Rec {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("gru4rec.item", &mut map);
        self.gru.collect_params("gru4rec.gru", &mut map);
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        _rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let user = self.user_vec(batch);
        crate::common::sampled_softmax_loss(&user, &self.item_emb, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;

    #[test]
    fn scoring_depends_on_order() {
        let model = Gru4Rec::new(20, 8, 10, 1);
        let mut a = Sequence::new();
        a.push(1, Behavior::Click);
        a.push(2, Behavior::Click);
        let mut b = Sequence::new();
        b.push(2, Behavior::Click);
        b.push(1, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        let sa = model.score_batch(&[&a], &[&cands]);
        let sb = model.score_batch(&[&b], &[&cands]);
        assert_ne!(sa, sb, "GRU must be order-sensitive");
    }

    #[test]
    fn param_registry_complete() {
        let model = Gru4Rec::new(20, 8, 10, 1);
        // item table + 9 GRU tensors.
        assert_eq!(model.named_params().len(), 10);
    }

    #[test]
    fn loss_backward_touches_gru() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::yelp_like(91).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = Gru4Rec::new(g.dataset.num_items, 8, 20, 2);
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        model.loss_on_batch(&refs, &sampler, 4, &mut rng).backward();
        for (name, t) in model.named_params().iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
