//! CL4SRec: contrastive learning for sequential recommendation
//! (Xie et al., 2022) — SASRec plus an augmentation-based InfoNCE over two
//! stochastic views of each sequence.
//!
//! In the comparison this isolates the value of *sequence-level SSL
//! without multi-behavior or multi-interest machinery*: it shares
//! MBMISSL's augmentation objective but nothing else.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::ssl::augmentation_loss;
use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::augment::{default_ops, random_augment};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{
    causal_mask, key_padding_mask, Embedding, Mode, Module, ParamMap, TransformerBlock,
};
use mbssl_tensor::{no_grad, Tensor};

pub struct Cl4SRec {
    item_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    heads: usize,
    dim: usize,
    max_seq_len: usize,
    dropout: f32,
    /// Weight of the contrastive term.
    lambda_cl: f32,
    /// InfoNCE temperature.
    temperature: f32,
}

impl Cl4SRec {
    #[allow(clippy::too_many_arguments)] // constructor mirrors the hyperparameter list
    pub fn new(
        num_items: usize,
        dim: usize,
        heads: usize,
        num_layers: usize,
        max_seq_len: usize,
        dropout: f32,
        lambda_cl: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Cl4SRec {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            pos_emb: Embedding::new(max_seq_len, dim, &mut rng),
            blocks: (0..num_layers)
                .map(|_| TransformerBlock::new(dim, heads, dim * 2, dropout, &mut rng))
                .collect(),
            heads,
            dim,
            max_seq_len,
            dropout,
            lambda_cl,
            temperature: 0.2,
        }
    }

    fn user_vec(&self, batch: &Batch, mode: &mut Mode) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        let item = self.item_emb.forward_seq(&batch.items, b, l);
        let positions: Vec<usize> = (0..b * l).map(|i| i % l).collect();
        let pos = self.pos_emb.forward_seq(&positions, b, l);
        let mut h = mode.dropout(&item.add(&pos), self.dropout);
        let mask = key_padding_mask(&batch.valid, b, self.heads, l).maximum(&causal_mask(l));
        for block in &self.blocks {
            h = block.forward(&h, Some(&mask), mode);
        }
        crate::common::last_valid_state(&h, batch)
    }
}

impl SequentialRecommender for Cl4SRec {
    fn name(&self) -> String {
        format!("CL4SRec(d={}, λ={})", self.dim, self.lambda_cl)
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let user = self.user_vec(&batch, &mut Mode::Eval);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for Cl4SRec {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("cl4srec.item", &mut map);
        self.pos_emb.collect_params("cl4srec.pos", &mut map);
        for (i, b) in self.blocks.iter().enumerate() {
            b.collect_params(&format!("cl4srec.block{i}"), &mut map);
        }
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let user = self.user_vec(batch, &mut Mode::Train(rng));
        let mut loss = crate::common::sampled_softmax_loss(&user, &self.item_emb, batch);

        if self.lambda_cl > 0.0 {
            let ops = default_ops();
            let view = |rng: &mut StdRng| -> Batch {
                let seqs: Vec<Sequence> = prepared
                    .instances
                    .iter()
                    .map(|inst| random_augment(&inst.history, &ops, rng))
                    .collect();
                let view_refs: Vec<&Sequence> = seqs.iter().collect();
                Batch::encode_histories(&view_refs)
            };
            let b1 = view(rng);
            let b2 = view(rng);
            let v1 = self.user_vec(&b1, &mut Mode::Train(rng));
            let v2 = self.user_vec(&b2, &mut Mode::Train(rng));
            let cl = augmentation_loss(&v1, &v2, self.temperature);
            loss = loss.add(&cl.mul_scalar(self.lambda_cl));
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::preprocess::{leave_one_out, SplitConfig};
    use mbssl_data::synthetic::SyntheticConfig;

    #[test]
    fn contrastive_term_changes_loss() {
        let g = SyntheticConfig::yelp_like(141).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let with_cl = Cl4SRec::new(g.dataset.num_items, 8, 2, 1, 20, 0.0, 0.3, 5);
        let without = Cl4SRec::new(g.dataset.num_items, 8, 2, 1, 20, 0.0, 0.0, 5);
        let refs: Vec<&TrainInstance> = split.train.iter().take(8).collect();
        let l1 = with_cl
            .loss_on_batch(&refs, &sampler, 8, &mut StdRng::seed_from_u64(1))
            .item();
        let l2 = without
            .loss_on_batch(&refs, &sampler, 8, &mut StdRng::seed_from_u64(1))
            .item();
        assert!((l1 - l2).abs() > 1e-6);
    }

    #[test]
    fn gradients_complete_with_cl_on() {
        let g = SyntheticConfig::yelp_like(142).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = Cl4SRec::new(g.dataset.num_items, 8, 2, 1, 20, 0.0, 0.3, 6);
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        model
            .loss_on_batch(&refs, &sampler, 4, &mut StdRng::seed_from_u64(2))
            .backward();
        for (name, t) in model.named_params().iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }

    #[test]
    fn eval_deterministic() {
        let model = Cl4SRec::new(30, 8, 2, 1, 10, 0.5, 0.3, 7);
        let mut h = Sequence::new();
        h.push(1, mbssl_data::Behavior::Click);
        h.push(2, mbssl_data::Behavior::Click);
        let cands: Vec<ItemId> = (1..=6).collect();
        assert_eq!(
            model.score_batch(&[&h], &[&cands]),
            model.score_batch(&[&h], &[&cands])
        );
    }
}
