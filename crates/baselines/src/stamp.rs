//! STAMP: short-term attention/memory priority model (Liu et al., 2018).
//!
//! Attention over the session's item embeddings queried by (mean state,
//! last item), combined through two small MLPs and a trilinear-style
//! composition. A strong lightweight attention baseline that models the
//! recency bias sequential recommendation exhibits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{Embedding, Linear, Module, ParamMap};
use mbssl_tensor::{no_grad, Tensor};

pub struct Stamp {
    item_emb: Embedding,
    /// Attention projections: score = w0ᵀ σ(W1 x_i + W2 x_last + W3 mean).
    w1: Linear,
    w2: Linear,
    w3: Linear,
    w0: Linear,
    /// Output MLPs for the session (s) and last-item (t) paths.
    mlp_s: Linear,
    mlp_t: Linear,
    dim: usize,
    max_seq_len: usize,
}

impl Stamp {
    pub fn new(num_items: usize, dim: usize, max_seq_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Stamp {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            w1: Linear::new_no_bias(dim, dim, &mut rng),
            w2: Linear::new_no_bias(dim, dim, &mut rng),
            w3: Linear::new(dim, dim, &mut rng),
            w0: Linear::new_no_bias(dim, 1, &mut rng),
            mlp_s: Linear::new(dim, dim, &mut rng),
            mlp_t: Linear::new(dim, dim, &mut rng),
            dim,
            max_seq_len,
        }
    }

    /// User vector: `h_s ⊙ h_t` where `h_s` is the attention-pooled session
    /// state and `h_t` the transformed last item.
    fn user_vec(&self, batch: &Batch) -> Tensor {
        let (b, l, d) = (batch.size, batch.max_len, self.dim);
        let x = self.item_emb.forward_seq(&batch.items, b, l); // [B, L, D]
        let valid3 = Tensor::from_vec(batch.valid.clone(), [b, l, 1]);
        let counts: Vec<f32> = (0..b)
            .map(|bi| batch.valid[bi * l..(bi + 1) * l].iter().sum::<f32>().max(1.0))
            .collect();
        let mean = x
            .mul(&valid3)
            .sum_axis(1, false)
            .div(&Tensor::from_vec(counts, [b, 1])); // [B, D]
        let last = crate::common::last_valid_state(&x, batch); // [B, D]

        // Attention scores over positions.
        let q_last = self.w2.forward(&last).reshape([b, 1, d]);
        let q_mean = self.w3.forward(&mean).reshape([b, 1, d]);
        let keys = self.w1.forward(&x); // [B, L, D]
        let act = keys.add(&q_last).add(&q_mean).sigmoid();
        let scores = self.w0.forward(&act); // [B, L, 1]
        // Masked weighted sum (STAMP uses unnormalized attention weights).
        let weights = scores.mul(&valid3); // zero out padding
        let h_s = x.mul(&weights).sum_axis(1, false); // [B, D]

        let s_path = self.mlp_s.forward(&h_s).tanh();
        let t_path = self.mlp_t.forward(&last).tanh();
        s_path.mul(&t_path)
    }
}

impl SequentialRecommender for Stamp {
    fn name(&self) -> String {
        format!("STAMP(d={})", self.dim)
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let user = self.user_vec(&batch);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for Stamp {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("stamp.item", &mut map);
        self.w1.collect_params("stamp.w1", &mut map);
        self.w2.collect_params("stamp.w2", &mut map);
        self.w3.collect_params("stamp.w3", &mut map);
        self.w0.collect_params("stamp.w0", &mut map);
        self.mlp_s.collect_params("stamp.mlp_s", &mut map);
        self.mlp_t.collect_params("stamp.mlp_t", &mut map);
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        _rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let user = self.user_vec(batch);
        crate::common::sampled_softmax_loss(&user, &self.item_emb, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;

    #[test]
    fn last_item_strongly_influences_output() {
        let model = Stamp::new(30, 8, 10, 1);
        let mut a = Sequence::new();
        a.push(1, Behavior::Click);
        a.push(2, Behavior::Click);
        let mut b = Sequence::new();
        b.push(1, Behavior::Click);
        b.push(9, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        assert_ne!(model.score_batch(&[&a], &[&cands]), model.score_batch(&[&b], &[&cands]));
    }

    #[test]
    fn padding_does_not_affect_output() {
        let model = Stamp::new(30, 8, 10, 2);
        let mut short = Sequence::new();
        short.push(3, Behavior::Click);
        short.push(4, Behavior::Click);
        let mut long = Sequence::new();
        long.push(3, Behavior::Click);
        long.push(4, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        // Batch the short sequence with a longer one to force padding.
        let mut longer = Sequence::new();
        for i in 1..=7 {
            longer.push(i, Behavior::Click);
        }
        let alone = model.score_batch(&[&short], &[&cands]);
        let padded = model.score_batch(&[&long, &longer], &[&cands, &cands]);
        for (x, y) in alone[0].iter().zip(padded[0].iter()) {
            assert!((x - y).abs() < 1e-4, "padding changed STAMP output");
        }
    }

    #[test]
    fn training_gradients_complete() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::yelp_like(151).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = Stamp::new(g.dataset.num_items, 8, 20, 3);
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        model.loss_on_batch(&refs, &sampler, 4, &mut rng).backward();
        for (name, t) in model.named_params().iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
