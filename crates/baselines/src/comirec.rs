//! ComiRec: controllable multi-interest sequential recommendation
//! (Cen et al., 2020). Single-behavior multi-interest baseline — isolates
//! the contribution of multi-interest modeling without multi-behavior or
//! SSL machinery.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::config::{ExtractorKind, ModelConfig};
use mbssl_core::interest::InterestExtractor;
use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{Embedding, Module, ParamMap};
use mbssl_tensor::{no_grad, Tensor};

pub struct ComiRec {
    item_emb: Embedding,
    pos_emb: Embedding,
    extractor: InterestExtractor,
    dim: usize,
    max_seq_len: usize,
}

impl ComiRec {
    /// `kind` selects the SA (self-attentive) or DR (dynamic-routing)
    /// variant from the original paper.
    pub fn new(
        num_items: usize,
        dim: usize,
        num_interests: usize,
        kind: ExtractorKind,
        max_seq_len: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ModelConfig {
            dim,
            num_interests,
            extractor_hidden: dim,
            extractor: kind,
            max_seq_len,
            ..ModelConfig::default()
        };
        ComiRec {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            pos_emb: Embedding::new(max_seq_len, dim, &mut rng),
            extractor: InterestExtractor::new(&cfg, &mut rng),
            dim,
            max_seq_len,
        }
    }

    /// Interest vectors `[B, K, D]` from raw item embeddings + positions.
    fn interests(&self, batch: &Batch) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        let item = self.item_emb.forward_seq(&batch.items, b, l);
        let positions: Vec<usize> = (0..b * l).map(|i| i % l).collect();
        let pos = self.pos_emb.forward_seq(&positions, b, l);
        self.extractor.forward(&item.add(&pos), &batch.valid)
    }

    /// `max_k ⟨z_k, e_i⟩` scores for a flat candidate id list.
    fn max_dot_scores(&self, z: &Tensor, ids: &[usize], c: usize) -> Tensor {
        let b = z.dims()[0];
        let cand = self.item_emb.forward(ids).reshape([b, c, self.dim]);
        z.bmm(&cand.transpose_last()).max_axis(1, false)
    }
}

impl SequentialRecommender for ComiRec {
    fn name(&self) -> String {
        format!(
            "ComiRec-{}(K={})",
            match self.extractor {
                InterestExtractor::SelfAttentive { .. } => "SA",
                InterestExtractor::DynamicRouting { .. } => "DR",
            },
            self.extractor.num_interests()
        )
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let z = self.interests(&batch);
            let c = candidates[0].len();
            let flat: Vec<usize> = candidates
                .iter()
                .flat_map(|l| l.iter().map(|&i| i as usize))
                .collect();
            let scores = self.max_dot_scores(&z, &flat, c);
            let data = scores.to_vec();
            (0..histories.len())
                .map(|b| data[b * c..(b + 1) * c].to_vec())
                .collect()
        })
    }
}

impl TrainableRecommender for ComiRec {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("comirec.item", &mut map);
        self.pos_emb.collect_params("comirec.pos", &mut map);
        self.extractor.collect_params("comirec.extractor", &mut map);
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        _rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let z = self.interests(batch);
        let (b, n) = (batch.size, batch.num_negatives);
        let c = 1 + n;
        let mut ids = Vec::with_capacity(b * c);
        for bi in 0..b {
            ids.push(batch.targets[bi]);
            ids.extend_from_slice(&batch.negatives[bi * n..(bi + 1) * n]);
        }
        let logits = self.max_dot_scores(&z, &ids, c);
        logits.cross_entropy_logits(&vec![0usize; b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;

    #[test]
    fn both_variants_score_finite() {
        for kind in [ExtractorKind::SelfAttentive, ExtractorKind::DynamicRouting] {
            let model = ComiRec::new(20, 8, 3, kind, 10, 1);
            let mut h = Sequence::new();
            h.push(1, Behavior::Click);
            h.push(5, Behavior::Click);
            let cands: Vec<ItemId> = (1..=6).collect();
            let scores = model.score_batch(&[&h], &[&cands]);
            assert!(scores[0].iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn name_reflects_variant() {
        assert!(ComiRec::new(10, 8, 4, ExtractorKind::SelfAttentive, 10, 1)
            .name()
            .contains("SA"));
        assert!(ComiRec::new(10, 8, 4, ExtractorKind::DynamicRouting, 10, 1)
            .name()
            .contains("DR"));
    }

    #[test]
    fn training_grads_cover_params() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::yelp_like(121).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = ComiRec::new(g.dataset.num_items, 8, 2, ExtractorKind::SelfAttentive, 20, 2);
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        model.loss_on_batch(&refs, &sampler, 4, &mut rng).backward();
        for (name, t) in model.named_params().iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
