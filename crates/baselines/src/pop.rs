//! Non-parametric popularity baselines.

use std::collections::HashMap;

use mbssl_core::SequentialRecommender;
use mbssl_data::preprocess::Split;
use mbssl_data::{ItemId, Sequence};

/// Global popularity: every candidate scored by its training-set frequency
/// (target behavior counted with extra weight, since that is the predicted
/// behavior).
pub struct Pop {
    counts: HashMap<ItemId, f64>,
}

impl Pop {
    /// Fits from the per-user training histories of a split.
    pub fn fit(split: &Split) -> Self {
        let mut counts: HashMap<ItemId, f64> = HashMap::new();
        for (_, hist) in &split.train_histories {
            for (&it, &b) in hist.items.iter().zip(hist.behaviors.iter()) {
                let w = if b == split.target_behavior { 2.0 } else { 1.0 };
                *counts.entry(it).or_insert(0.0) += w;
            }
        }
        // Training targets are the strongest popularity evidence.
        for inst in &split.train {
            *counts.entry(inst.target).or_insert(0.0) += 2.0;
        }
        Pop { counts }
    }

    pub fn count(&self, item: ItemId) -> f64 {
        self.counts.get(&item).copied().unwrap_or(0.0)
    }
}

impl SequentialRecommender for Pop {
    fn name(&self) -> String {
        "POP".into()
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(histories.len(), candidates.len());
        candidates
            .iter()
            .map(|list| list.iter().map(|&i| self.count(i) as f32).collect())
            .collect()
    }
}

/// Session popularity: global popularity, but items already in the user's
/// history get boosted by their in-history frequency (repeat-consumption
/// prior).
pub struct SPop {
    global: Pop,
    /// Weight of the in-session count relative to global popularity.
    session_weight: f32,
}

impl SPop {
    pub fn fit(split: &Split, session_weight: f32) -> Self {
        SPop {
            global: Pop::fit(split),
            session_weight,
        }
    }
}

impl SequentialRecommender for SPop {
    fn name(&self) -> String {
        "S-POP".into()
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        let max_global = self
            .global
            .counts
            .values()
            .copied()
            .fold(1.0f64, f64::max) as f32;
        histories
            .iter()
            .zip(candidates.iter())
            .map(|(hist, list)| {
                let mut in_session: HashMap<ItemId, f32> = HashMap::new();
                for &it in &hist.items {
                    *in_session.entry(it).or_insert(0.0) += 1.0;
                }
                list.iter()
                    .map(|&i| {
                        let g = self.global.count(i) as f32 / max_global;
                        let s = in_session.get(&i).copied().unwrap_or(0.0);
                        g + self.session_weight * s
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::preprocess::{leave_one_out, SplitConfig};
    use mbssl_data::synthetic::SyntheticConfig;
    use mbssl_data::Behavior;

    fn split() -> Split {
        let g = SyntheticConfig::taobao_like(61).scaled(0.08).generate();
        leave_one_out(&g.dataset, &SplitConfig::default())
    }

    #[test]
    fn pop_scores_are_frequency_ordered() {
        let s = split();
        let pop = Pop::fit(&s);
        // The most counted item must outscore a never-seen one.
        let (&best, _) = pop
            .counts
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let unseen: ItemId = 999_999;
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let scores = pop.score_batch(&[&h], &[&[best, unseen]]);
        assert!(scores[0][0] > scores[0][1]);
    }

    #[test]
    fn pop_beats_random_on_synthetic() {
        use mbssl_core::evaluate;
        use mbssl_data::sampler::{EvalCandidates, NegativeSampler};

        let g = SyntheticConfig::taobao_like(62).scaled(0.08).generate();
        let s = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let cands = EvalCandidates::build(&s.test, &sampler, 99, 5);
        let pop = Pop::fit(&s);
        let m = evaluate(&pop, &s.test, &cands, 256).aggregate();
        // Random guessing gives HR@10 ≈ 0.1 on 100 candidates; Zipfian
        // popularity must beat that clearly.
        assert!(m.hr10 > 0.15, "POP HR@10 too low: {}", m.hr10);
    }

    #[test]
    fn spop_boosts_in_session_items() {
        let s = split();
        let spop = SPop::fit(&s, 1.0);
        let mut h = Sequence::new();
        h.push(7, Behavior::Click);
        h.push(7, Behavior::Click);
        let scores = spop.score_batch(&[&h], &[&[7, 8]]);
        assert!(scores[0][0] > scores[0][1]);
    }
}
