//! `mbssl-baselines` — the comparison zoo, re-implemented on the shared
//! substrate so every method sees identical inputs and evaluation.
//!
//! Traditional sequential: [`pop::Pop`], [`pop::SPop`],
//! [`itemknn::ItemKnn`], [`bprmf::BprMf`], [`gru4rec::Gru4Rec`],
//! [`sasrec::SasRec`], [`bert4rec::Bert4Rec`].
//! SSL: [`cl4srec::Cl4SRec`] (SASRec + augmentation contrast).
//! Attention: [`stamp::Stamp`].
//! Multi-interest: [`comirec::ComiRec`] (SA and DR variants).
//! Multi-behavior: [`mbgru::MbGru`], [`mbt::Mbt`].

pub mod bert4rec;
pub mod cl4srec;
pub mod bprmf;
pub mod common;
pub mod comirec;
pub mod gru4rec;
pub mod itemknn;
pub mod mbgru;
pub mod mbt;
pub mod pop;
pub mod sasrec;
pub mod stamp;

pub use bert4rec::Bert4Rec;
pub use cl4srec::Cl4SRec;
pub use bprmf::BprMf;
pub use comirec::ComiRec;
pub use gru4rec::Gru4Rec;
pub use itemknn::ItemKnn;
pub use mbgru::MbGru;
pub use mbt::Mbt;
pub use pop::{Pop, SPop};
pub use sasrec::SasRec;
pub use stamp::Stamp;
