//! MBT: multi-behavior transformer (an MB-STR-style baseline).
//!
//! Item + behavior + position embeddings through a bidirectional
//! transformer with key-padding masking, plus a behavior-aware prediction
//! head: the readout is the concatenation-free sum of (a) the last valid
//! state and (b) the mean of target-behavior positions, mirroring MB-STR's
//! behavior-aware aggregation at a fraction of its machinery.

#![allow(clippy::needless_range_loop)] // multi-array index loops
#![allow(clippy::too_many_arguments)] // constructor mirrors the hyperparameter list

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{Behavior, ItemId, Sequence};
use mbssl_tensor::nn::{key_padding_mask, Embedding, Mode, Module, ParamMap, TransformerBlock};
use mbssl_tensor::{no_grad, Tensor};

pub struct Mbt {
    item_emb: Embedding,
    behavior_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    heads: usize,
    dim: usize,
    max_seq_len: usize,
    dropout: f32,
    target_tag: usize,
}

impl Mbt {
    pub fn new(
        num_items: usize,
        target_behavior: Behavior,
        dim: usize,
        heads: usize,
        num_layers: usize,
        max_seq_len: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Mbt {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            behavior_emb: Embedding::new(Behavior::VOCAB, dim, &mut rng)
                .with_padding_idx(Behavior::PAD_INDEX),
            pos_emb: Embedding::new(max_seq_len, dim, &mut rng),
            blocks: (0..num_layers)
                .map(|_| TransformerBlock::new(dim, heads, dim * 2, dropout, &mut rng))
                .collect(),
            heads,
            dim,
            max_seq_len,
            dropout,
            target_tag: target_behavior.index(),
        }
    }

    fn user_vec(&self, batch: &Batch, mode: &mut Mode) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        let item = self.item_emb.forward_seq(&batch.items, b, l);
        let behavior = self.behavior_emb.forward_seq(&batch.behaviors, b, l);
        let positions: Vec<usize> = (0..b * l).map(|i| i % l).collect();
        let pos = self.pos_emb.forward_seq(&positions, b, l);
        let mut h = mode.dropout(&item.add(&behavior).add(&pos), self.dropout);
        let mask = key_padding_mask(&batch.valid, b, self.heads, l);
        for block in &self.blocks {
            h = block.forward(&h, Some(&mask), mode);
        }
        // Behavior-aware readout: last state + target-behavior mean.
        let last = crate::common::last_valid_state(&h, batch);
        let mut target_mask = vec![0.0f32; b * l];
        let mut counts = vec![0.0f32; b];
        for bi in 0..b {
            for t in 0..l {
                let idx = bi * l + t;
                if batch.valid[idx] != 0.0 && batch.behaviors[idx] == self.target_tag {
                    target_mask[idx] = 1.0;
                    counts[bi] += 1.0;
                }
            }
        }
        let tm = Tensor::from_vec(target_mask, [b, l, 1]);
        let denom = Tensor::from_vec(counts.iter().map(|&c| c.max(1.0)).collect::<Vec<_>>(), [b, 1]);
        let target_mean = h.mul(&tm).sum_axis(1, false).div(&denom);
        last.add(&target_mean)
    }
}

impl SequentialRecommender for Mbt {
    fn name(&self) -> String {
        format!("MBT(d={}, L={})", self.dim, self.blocks.len())
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let user = self.user_vec(&batch, &mut Mode::Eval);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for Mbt {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("mbt.item", &mut map);
        self.behavior_emb.collect_params("mbt.behavior", &mut map);
        self.pos_emb.collect_params("mbt.pos", &mut map);
        for (i, b) in self.blocks.iter().enumerate() {
            b.collect_params(&format!("mbt.block{i}"), &mut map);
        }
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let user = self.user_vec(batch, &mut Mode::Train(rng));
        crate::common::sampled_softmax_loss(&user, &self.item_emb, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_aware_scoring() {
        let model = Mbt::new(20, Behavior::Purchase, 8, 2, 1, 10, 0.0, 1);
        let mut a = Sequence::new();
        a.push(1, Behavior::Click);
        a.push(2, Behavior::Purchase);
        let mut b = Sequence::new();
        b.push(1, Behavior::Purchase);
        b.push(2, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        assert_ne!(model.score_batch(&[&a], &[&cands]), model.score_batch(&[&b], &[&cands]));
    }

    #[test]
    fn histories_without_target_behavior_still_score() {
        let model = Mbt::new(20, Behavior::Purchase, 8, 2, 1, 10, 0.0, 2);
        let mut h = Sequence::new();
        h.push(1, Behavior::Click);
        let cands: Vec<ItemId> = (1..=5).collect();
        let scores = model.score_batch(&[&h], &[&cands]);
        assert!(scores[0].iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_gradients_complete() {
        use mbssl_data::preprocess::{leave_one_out, SplitConfig};
        use mbssl_data::synthetic::SyntheticConfig;

        let g = SyntheticConfig::taobao_like(131).scaled(0.05).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = Mbt::new(
            g.dataset.num_items,
            g.dataset.target_behavior,
            8,
            2,
            1,
            20,
            0.0,
            3,
        );
        let refs: Vec<&TrainInstance> = split.train.iter().take(4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        model.loss_on_batch(&refs, &sampler, 4, &mut rng).backward();
        for (name, t) in model.named_params().iter() {
            assert!(t.grad().is_some(), "{name} missing grad");
        }
    }
}
