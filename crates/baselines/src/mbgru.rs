//! MB-GRU: a behavior-aware recurrent baseline — GRU4Rec plus behavior
//! embeddings fused into every step. The simplest way to consume
//! multi-behavior signal, isolating "does behavior identity help at all".

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{Batch, NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{Behavior, ItemId, Sequence};
use mbssl_tensor::nn::{Embedding, Gru, Module, ParamMap};
use mbssl_tensor::{no_grad, Tensor};

pub struct MbGru {
    item_emb: Embedding,
    behavior_emb: Embedding,
    gru: Gru,
    dim: usize,
    max_seq_len: usize,
}

impl MbGru {
    pub fn new(num_items: usize, dim: usize, max_seq_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        MbGru {
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            behavior_emb: Embedding::new(Behavior::VOCAB, dim, &mut rng)
                .with_padding_idx(Behavior::PAD_INDEX),
            gru: Gru::new(dim, dim, &mut rng),
            dim,
            max_seq_len,
        }
    }

    fn user_vec(&self, batch: &Batch) -> Tensor {
        let (b, l) = (batch.size, batch.max_len);
        let item = self.item_emb.forward_seq(&batch.items, b, l);
        let behavior = self.behavior_emb.forward_seq(&batch.behaviors, b, l);
        let x = item.add(&behavior);
        let valid = Tensor::from_vec(batch.valid.clone(), [b, l]);
        let (_, last) = self.gru.forward(&x, &valid);
        last
    }
}

impl SequentialRecommender for MbGru {
    fn name(&self) -> String {
        format!("MB-GRU(d={})", self.dim)
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let batch = crate::common::encode_histories(histories, self.max_seq_len);
            let user = self.user_vec(&batch);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for MbGru {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.item_emb.collect_params("mbgru.item", &mut map);
        self.behavior_emb.collect_params("mbgru.behavior", &mut map);
        self.gru.collect_params("mbgru.gru", &mut map);
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        PreparedBatch::build(
            instances,
            sampler,
            num_negatives,
            NegativeStrategy::Uniform,
            Some(self.max_seq_len),
            rng,
        )
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        _rng: &mut StdRng,
    ) -> Tensor {
        let batch = &prepared.batch;
        let user = self.user_vec(batch);
        crate::common::sampled_softmax_loss(&user, &self.item_emb, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_labels_change_scores() {
        let model = MbGru::new(20, 8, 10, 1);
        let mut a = Sequence::new();
        a.push(1, Behavior::Click);
        a.push(2, Behavior::Click);
        let mut b = Sequence::new();
        b.push(1, Behavior::Purchase);
        b.push(2, Behavior::Purchase);
        let cands: Vec<ItemId> = (1..=5).collect();
        assert_ne!(
            model.score_batch(&[&a], &[&cands]),
            model.score_batch(&[&b], &[&cands]),
            "behavior identity had no effect"
        );
    }

    #[test]
    fn params_include_behavior_table() {
        let model = MbGru::new(20, 8, 10, 1);
        assert!(model.named_params().get("mbgru.behavior.weight").is_some());
    }
}
