//! Shared plumbing for the baseline zoo: history encoding, last-state
//! readout, candidate scoring from a single user vector, and the sampled
//! softmax objective. Keeping these here guarantees every baseline uses
//! bit-identical input handling — the fair-comparison contract.

use mbssl_data::sampler::Batch;
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::Embedding;
use mbssl_tensor::{no_grad, Tensor};

/// Truncates histories to `max_len` and encodes them into a padded batch.
pub fn encode_histories(histories: &[&Sequence], max_len: usize) -> Batch {
    let truncated: Vec<Sequence> = histories
        .iter()
        .map(|h| h.truncate_to_recent(max_len))
        .collect();
    let refs: Vec<&Sequence> = truncated.iter().collect();
    Batch::encode_histories(&refs)
}

/// Gathers the hidden state at each row's last valid position:
/// `[B, L, D] -> [B, D]`. Rows with no valid positions read position 0.
pub fn last_valid_state(h: &Tensor, batch: &Batch) -> Tensor {
    let (b, l, d) = (h.dims()[0], h.dims()[1], h.dims()[2]);
    debug_assert_eq!(b, batch.size);
    debug_assert_eq!(l, batch.max_len);
    let mut indices = Vec::with_capacity(b);
    for bi in 0..b {
        let mut last = 0usize;
        for t in 0..l {
            if batch.valid[bi * l + t] != 0.0 {
                last = t;
            }
        }
        indices.push(bi * l + last);
    }
    h.reshape([b * l, d]).index_select0(&indices)
}

/// Mean of valid positions' states: `[B, L, D] -> [B, D]`.
pub fn mean_valid_state(h: &Tensor, batch: &Batch) -> Tensor {
    let (b, l, _d) = (h.dims()[0], h.dims()[1], h.dims()[2]);
    let valid = Tensor::from_vec(batch.valid.clone(), [b, l, 1]);
    let summed = h.mul(&valid).sum_axis(1, false);
    let counts: Vec<f32> = (0..b)
        .map(|bi| batch.valid[bi * l..(bi + 1) * l].iter().sum::<f32>().max(1.0))
        .collect();
    summed.div(&Tensor::from_vec(counts, [b, 1]))
}

/// Scores candidate lists by `⟨user_vec, item_emb⟩`. All lists must share
/// one length.
pub fn score_from_user_vec(
    user: &Tensor,
    emb: &Embedding,
    candidates: &[&[ItemId]],
) -> Vec<Vec<f32>> {
    let b = user.dims()[0];
    let d = user.dims()[1];
    assert_eq!(b, candidates.len());
    let c = candidates[0].len();
    assert!(candidates.iter().all(|l| l.len() == c), "ragged candidates");
    no_grad(|| {
        let flat: Vec<usize> = candidates
            .iter()
            .flat_map(|l| l.iter().map(|&i| i as usize))
            .collect();
        let ce = emb.forward(&flat).reshape([b, c, d]);
        let scores = ce.bmm(&user.unsqueeze(2)).reshape([b, c]);
        let data = scores.to_vec();
        (0..b).map(|bi| data[bi * c..(bi + 1) * c].to_vec()).collect()
    })
}

/// Sampled-softmax loss: user vectors `[B, D]` against `[target ; negs]`
/// candidate ids from the batch.
pub fn sampled_softmax_loss(user: &Tensor, emb: &Embedding, batch: &Batch) -> Tensor {
    let b = batch.size;
    let n = batch.num_negatives;
    let d = user.dims()[1];
    let c = 1 + n;
    let mut ids = Vec::with_capacity(b * c);
    for bi in 0..b {
        ids.push(batch.targets[bi]);
        ids.extend_from_slice(&batch.negatives[bi * n..(bi + 1) * n]);
    }
    let ce = emb.forward(&ids).reshape([b, c, d]);
    let logits = ce.bmm(&user.unsqueeze(2)).reshape([b, c]);
    logits.cross_entropy_logits(&vec![0usize; b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::Behavior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seqs() -> Vec<Sequence> {
        let mut s1 = Sequence::new();
        s1.push(1, Behavior::Click);
        s1.push(2, Behavior::Click);
        s1.push(3, Behavior::Click);
        let mut s2 = Sequence::new();
        s2.push(4, Behavior::Click);
        vec![s1, s2]
    }

    #[test]
    fn last_valid_state_picks_final_position() {
        let ss = seqs();
        let refs: Vec<&Sequence> = ss.iter().collect();
        let batch = encode_histories(&refs, 10);
        // h[b, t, :] = constant t+10b for identification.
        let (b, l, d) = (batch.size, batch.max_len, 4);
        let data: Vec<f32> = (0..b * l * d)
            .map(|i| {
                let bi = i / (l * d);
                let t = (i / d) % l;
                (t + 10 * bi) as f32
            })
            .collect();
        let h = Tensor::from_vec(data, [b, l, d]);
        let last = last_valid_state(&h, &batch);
        assert_eq!(last.to_vec(), vec![2.0, 2.0, 2.0, 2.0, 10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn mean_valid_state_ignores_padding() {
        let ss = seqs();
        let refs: Vec<&Sequence> = ss.iter().collect();
        let batch = encode_histories(&refs, 10);
        let (b, l) = (batch.size, batch.max_len);
        // h = 1.0 at valid positions, 100.0 at padding.
        let data: Vec<f32> = (0..b * l * 2)
            .map(|i| {
                let bi = i / (l * 2);
                let t = (i / 2) % l;
                if batch.valid[bi * l + t] != 0.0 {
                    1.0
                } else {
                    100.0
                }
            })
            .collect();
        let h = Tensor::from_vec(data, [b, l, 2]);
        let mean = mean_valid_state(&h, &batch);
        assert!(mean.to_vec().iter().all(|&v| (v - 1.0).abs() < 1e-5));
    }

    #[test]
    fn truncation_respected() {
        let mut s = Sequence::new();
        for i in 1..=30 {
            s.push(i, Behavior::Click);
        }
        let batch = encode_histories(&[&s], 5);
        assert_eq!(batch.max_len, 5);
        assert_eq!(batch.items[0], 26);
    }

    #[test]
    fn score_from_user_vec_ranks_by_dot() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(5, 2, &mut rng);
        // Overwrite rows for determinism.
        {
            let w = emb.weight();
            let mut data = w.data_mut();
            data.copy_from_slice(&[
                0.0, 0.0, // pad
                1.0, 0.0, // item 1
                0.0, 1.0, // item 2
                -1.0, 0.0, // item 3
                0.5, 0.5, // item 4
            ]);
        }
        let user = Tensor::from_slice(&[1.0, 0.0], [1, 2]);
        let scores = score_from_user_vec(&user, &emb, &[&[1, 2, 3, 4]]);
        assert_eq!(scores[0], vec![1.0, 0.0, -1.0, 0.5]);
    }

    #[test]
    fn sampled_softmax_decreases_when_target_score_raised() {
        let mut rng = StdRng::seed_from_u64(0);
        let emb = Embedding::new(6, 2, &mut rng);
        let batch = Batch {
            size: 1,
            max_len: 1,
            items: vec![1],
            behaviors: vec![1],
            valid: vec![1.0],
            targets: vec![2],
            negatives: vec![3, 4],
            num_negatives: 2,
            users: vec![0],
        };
        let user_aligned = {
            
            emb.forward(&[2]) // user == target embedding → high logit
        };
        let user_ortho = Tensor::zeros([1, 2]);
        let la = sampled_softmax_loss(&user_aligned, &emb, &batch).item();
        let lo = sampled_softmax_loss(&user_ortho, &emb, &batch).item();
        assert!(la < lo, "aligned {la} should beat orthogonal {lo}");
    }
}
