//! BPR-MF: matrix factorization with the Bayesian personalized ranking
//! loss. Non-sequential (ignores order), included as the classic CF
//! baseline.

use rand::rngs::StdRng;

use mbssl_core::{SequentialRecommender, TrainableRecommender};
use mbssl_data::preprocess::TrainInstance;
use mbssl_data::sampler::{NegativeSampler, NegativeStrategy, PreparedBatch};
use mbssl_data::{ItemId, Sequence};
use mbssl_tensor::nn::{Embedding, Module, ParamMap};
use mbssl_tensor::{no_grad, Tensor};

/// User/item factor model scored by `⟨u, i⟩`.
///
/// At evaluation the user vector is rebuilt from the history (mean of item
/// factors) rather than looked up, so the model generalizes to histories
/// it never saw — this "fold-in" is the standard sequential-protocol
/// adaptation of MF.
pub struct BprMf {
    user_emb: Embedding,
    item_emb: Embedding,
    dim: usize,
}

impl BprMf {
    pub fn new(num_users: usize, num_items: usize, dim: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        BprMf {
            user_emb: Embedding::new(num_users.max(1), dim, &mut rng),
            item_emb: Embedding::new(num_items + 1, dim, &mut rng).with_padding_idx(0),
            dim,
        }
    }

    fn fold_in(&self, histories: &[&Sequence]) -> Tensor {
        let batch = crate::common::encode_histories(histories, 50);
        let (b, l) = (batch.size, batch.max_len);
        let e = self
            .item_emb
            .forward_seq(&batch.items, b, l);
        crate::common::mean_valid_state(&e, &batch)
    }
}

impl SequentialRecommender for BprMf {
    fn name(&self) -> String {
        format!("BPR-MF(d={})", self.dim)
    }

    fn score_batch(&self, histories: &[&Sequence], candidates: &[&[ItemId]]) -> Vec<Vec<f32>> {
        no_grad(|| {
            let user = self.fold_in(histories);
            crate::common::score_from_user_vec(&user, &self.item_emb, candidates)
        })
    }
}

impl TrainableRecommender for BprMf {
    fn params(&self) -> Vec<Tensor> {
        self.named_params().tensors()
    }

    fn named_params(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.user_emb.collect_params("bprmf.user", &mut map);
        self.item_emb.collect_params("bprmf.item", &mut map);
        map
    }

    fn prepare_batch(
        &self,
        instances: &[&TrainInstance],
        sampler: &NegativeSampler,
        _num_negatives: usize,
        rng: &mut StdRng,
    ) -> PreparedBatch {
        // BPR is pairwise: exactly one negative per positive.
        PreparedBatch::build(instances, sampler, 1, NegativeStrategy::Uniform, None, rng)
    }

    fn loss_on_prepared(
        &self,
        prepared: &PreparedBatch,
        _sampler: &NegativeSampler,
        _num_negatives: usize,
        _rng: &mut StdRng,
    ) -> Tensor {
        // Classic pairwise BPR on (user, pos, neg) triples. The learned
        // user factor is a residual on top of the history fold-in so the
        // fold-in path used at eval time is also trained.
        let batch = &prepared.batch;
        let users: Vec<usize> = batch.users.iter().map(|&u| u as usize).collect();
        let histories: Vec<&Sequence> = prepared.histories();
        let pos_ids: Vec<usize> = batch.targets.clone();
        let neg_ids: Vec<usize> = batch.negatives.clone();
        let u = self
            .fold_in(&histories)
            .add(&self.user_emb.forward(&users));
        let pos = self.item_emb.forward(&pos_ids);
        let neg = self.item_emb.forward(&neg_ids);
        let pos_score = u.mul(&pos).sum_axis(-1, false);
        let neg_score = u.mul(&neg).sum_axis(-1, false);
        pos_score.bpr_loss(&neg_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbssl_data::preprocess::{leave_one_out, SplitConfig};
    use mbssl_data::synthetic::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn loss_decreases_over_steps() {
        let g = SyntheticConfig::taobao_like(81).scaled(0.06).generate();
        let split = leave_one_out(&g.dataset, &SplitConfig::default());
        let sampler = NegativeSampler::from_dataset(&g.dataset);
        let model = BprMf::new(g.dataset.num_users, g.dataset.num_items, 16, 3);
        let params = model.params();
        let mut opt = mbssl_tensor::optim::Adam::new(params, 0.05);
        use mbssl_tensor::optim::Optimizer;
        let refs: Vec<&TrainInstance> = split.train.iter().take(64).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let first = model.loss_on_batch(&refs, &sampler, 1, &mut rng).item();
        for _ in 0..30 {
            opt.zero_grad();
            let loss = model.loss_on_batch(&refs, &sampler, 1, &mut rng);
            loss.backward();
            opt.step();
        }
        let last = model.loss_on_batch(&refs, &sampler, 1, &mut rng).item();
        assert!(last < first, "BPR loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn scoring_is_deterministic() {
        let g = SyntheticConfig::yelp_like(82).scaled(0.05).generate();
        let model = BprMf::new(g.dataset.num_users, g.dataset.num_items, 8, 4);
        let h = &g.dataset.sequences[0];
        let cands: Vec<ItemId> = (1..=10).collect();
        assert_eq!(
            model.score_batch(&[h], &[&cands]),
            model.score_batch(&[h], &[&cands])
        );
    }
}
