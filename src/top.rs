//! `mbssl top` — a terminal dashboard over serve metrics snapshots.
//!
//! `mbssl serve --metrics-out PATH` atomically rewrites `PATH` with an
//! `mbssl.serve.metrics/1` JSON snapshot on an interval;
//! `mbssl top PATH` polls that file and renders a QPS sparkline (rate of
//! the `requests` counter between polls, timed by the snapshots' own
//! capture clocks), the per-stage latency quantile table, queue depth,
//! and the cache hit rate. There is no socket transport — the snapshot
//! file *is* the wire format (DESIGN.md §17), so `top` works identically
//! on a live server and on a snapshot file copied off a host.

use std::collections::VecDeque;
use std::time::Duration;

use serde::value::Value;

use mbssl_core::serve::METRICS_SCHEMA;
use mbssl_core::sparkline;

/// How many polls of QPS history the sparkline keeps.
const QPS_HISTORY: usize = 32;

/// Options for [`run`], parsed from `mbssl top` flags.
pub struct TopOptions {
    /// Poll interval between frames (`--interval MS`, default 1s).
    pub interval: Duration,
    /// Stop after this many frames (`--frames N`; `None` = until ^C).
    pub frames: Option<u64>,
    /// Redraw in place with an ANSI clear (off under `--no-clear`).
    pub clear: bool,
}

impl Default for TopOptions {
    fn default() -> TopOptions {
        TopOptions { interval: Duration::from_millis(1000), frames: None, clear: true }
    }
}

fn obj_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_num(v: &Value, key: &str) -> f64 {
    match obj_get(v, key) {
        Some(Value::Num(n)) => *n,
        _ => 0.0,
    }
}

fn get_bool(v: &Value, key: &str) -> bool {
    matches!(obj_get(v, key), Some(Value::Bool(true)))
}

/// `"12.3s"` / `"4m02s"` — compact uptime.
fn fmt_uptime(ms: f64) -> String {
    let secs = ms / 1e3;
    if secs < 60.0 {
        format!("{secs:.1}s")
    } else {
        format!("{}m{:02}s", (secs / 60.0) as u64, (secs % 60.0) as u64)
    }
}

/// One `count/p50/p90/p99/max` row from a histogram object in the
/// snapshot (nanosecond values, rendered as µs).
fn stage_row(out: &mut String, name: &str, h: &Value) {
    out.push_str(&format!(
        "  {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        name,
        get_num(h, "count") as u64,
        (get_num(h, "p50") / 1e3) as u64,
        (get_num(h, "p90") / 1e3) as u64,
        (get_num(h, "p99") / 1e3) as u64,
        (get_num(h, "max") / 1e3) as u64,
    ));
}

/// Renders one dashboard frame from a parsed snapshot. Pure — all I/O
/// (polling, clearing, printing) lives in [`run`]; tests feed fixture
/// JSON straight in.
pub fn render(snapshot: &Value, source: &str, qps: &[Option<f64>]) -> String {
    let mut out = String::new();
    let counters = obj_get(snapshot, "counters").cloned().unwrap_or(Value::Obj(Vec::new()));
    let requests = get_num(&counters, "requests") as u64;
    let batches = get_num(&counters, "batches") as u64;

    out.push_str(&format!(
        "mbssl top — {source}  (uptime {}, epoch {})\n",
        fmt_uptime(get_num(snapshot, "uptime_ms")),
        get_num(snapshot, "epoch") as u64,
    ));
    let last_qps = qps.iter().rev().find_map(|v| *v);
    out.push_str(&format!(
        "  qps      {}  {}\n",
        sparkline(qps),
        match last_qps {
            Some(q) => format!("{q:.1}"),
            None => "warming up".to_string(),
        },
    ));
    out.push_str(&format!(
        "  load     {requests} requests in {batches} batches (mean {:.2}/batch), queue depth {}\n",
        get_num(snapshot, "mean_batch"),
        get_num(snapshot, "queue_depth") as u64,
    ));
    out.push_str(&format!(
        "  cache    hit rate {:.0}% ({} hits / {} misses), {} sessions\n",
        100.0 * get_num(snapshot, "cache_hit_rate"),
        get_num(&counters, "cache_hits") as u64,
        get_num(&counters, "cache_misses") as u64,
        get_num(snapshot, "sessions") as u64,
    ));
    let budget = match obj_get(snapshot, "ann_budget_us") {
        Some(Value::Num(b)) => format!("budget {}µs", *b as u64),
        _ => "no budget".to_string(),
    };
    out.push_str(&format!(
        "  ann      ewma {}µs, {budget}{}, {} degraded requests\n",
        get_num(snapshot, "ann_ewma_us") as u64,
        if get_bool(snapshot, "ann_degraded_now") { " [DEGRADED]" } else { "" },
        get_num(&counters, "ann_degraded") as u64,
    ));
    out.push_str(&format!(
        "  ops      {} engine swaps, {} tail-sampled requests\n",
        get_num(&counters, "swaps") as u64,
        get_num(&counters, "tail_sampled") as u64,
    ));

    out.push_str(&format!(
        "  {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "stage", "count", "p50 µs", "p90 µs", "p99 µs", "max µs"
    ));
    if let Some(Value::Obj(stages)) = obj_get(snapshot, "stages") {
        for (name, h) in stages {
            stage_row(&mut out, name, h);
        }
    }

    if let Some(Value::Arr(buckets)) = obj_get(obj_get(snapshot, "batch").unwrap_or(&Value::Null), "buckets") {
        let sizes: Vec<String> = buckets
            .iter()
            .filter_map(|b| match b {
                Value::Arr(t) if t.len() == 3 => match (&t[0], &t[2]) {
                    (Value::Num(lower), Value::Num(count)) => {
                        Some(format!("{}:{}", *lower as u64, *count as u64))
                    }
                    _ => None,
                },
                _ => None,
            })
            .collect();
        out.push_str(&format!("  batches  {}\n", sizes.join(" ")));
    }
    out
}

/// Polls `path` and renders frames until `frames` run out (or forever).
///
/// `host:port`-shaped arguments get a pointed error: the dashboard reads
/// snapshot files, not sockets.
pub fn run(path: &str, opts: &TopOptions) -> Result<(), String> {
    let looks_like_addr = !std::path::Path::new(path).exists()
        && matches!(
            path.rsplit_once(':'),
            Some((host, port)) if !host.is_empty()
                && !port.is_empty()
                && port.bytes().all(|b| b.is_ascii_digit())
        );
    if looks_like_addr {
        return Err(format!(
            "mbssl top reads metrics snapshot files, not network addresses (got {path:?}); \
             run `mbssl serve --metrics-out FILE` and pass FILE"
        ));
    }

    let mut history: VecDeque<Option<f64>> = VecDeque::with_capacity(QPS_HISTORY);
    // (requests, unix_time_ms) from the previous poll; QPS is the delta
    // between snapshot capture clocks, so it is right even when the
    // writer interval and the poll interval disagree.
    let mut prev: Option<(f64, f64)> = None;
    let mut frame = 0u64;
    loop {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let snapshot: Value =
            serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e:?}"))?;
        match obj_get(&snapshot, "schema") {
            Some(Value::Str(s)) if s == METRICS_SCHEMA => {}
            other => {
                return Err(format!(
                    "{path} is not a serve metrics snapshot (schema {other:?}, want {METRICS_SCHEMA:?})"
                ))
            }
        }

        let requests = get_num(&obj_get(&snapshot, "counters").cloned().unwrap_or(Value::Null), "requests");
        let now_ms = get_num(&snapshot, "unix_time_ms");
        let qps = prev.and_then(|(req0, ms0)| {
            let dt = (now_ms - ms0) / 1e3;
            // A fresh snapshot with a going-backwards counter means the
            // server restarted; skip the sample rather than plot noise.
            (dt > 0.0 && requests >= req0).then(|| (requests - req0) / dt)
        });
        prev = Some((requests, now_ms));
        if history.len() == QPS_HISTORY {
            history.pop_front();
        }
        history.push_back(qps);

        let frame_text = render(&snapshot, path, &history.iter().copied().collect::<Vec<_>>());
        if opts.clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame_text}");
        use std::io::Write;
        let _ = std::io::stdout().flush();

        frame += 1;
        if opts.frames.is_some_and(|n| frame >= n) {
            return Ok(());
        }
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = r#"{"schema":"mbssl.serve.metrics/1","unix_time_ms":1700000000000,
        "uptime_ms":72500,"epoch":2,"queue_depth":1,"sessions":9,
        "counters":{"requests":600,"batches":200,"cache_hits":400,"cache_misses":200,
                    "ann_degraded":3,"swaps":2,"tail_sampled":11},
        "cache_hit_rate":0.6666,"mean_batch":3.0,"ann_budget_us":500,"ann_ewma_us":120,
        "ann_degraded_now":false,
        "batch":{"count":200,"sum":600,"min":1,"max":4,"p50":3,"p90":4,"p99":4,
                 "buckets":[[1,2,20],[4,5,180]]},
        "stages":{"queue":{"count":600,"sum":1,"min":1,"max":9000,"p50":1000,"p90":2000,
                           "p99":8000,"buckets":[[512,544,600]]},
                  "total":{"count":600,"sum":1,"min":1,"max":90000,"p50":21000,"p90":42000,
                           "p99":88000,"buckets":[[512,544,600]]}}}"#;

    #[test]
    fn renders_all_dashboard_sections() {
        let v: Value = serde_json::from_str(FIXTURE).unwrap();
        let frame = render(&v, "snap.json", &[None, Some(10.0), Some(40.0)]);
        for needle in [
            "uptime 1m12s",
            "epoch 2",
            "600 requests in 200 batches",
            "queue depth 1",
            "hit rate 67%",
            "9 sessions",
            "ewma 120µs, budget 500µs",
            "2 engine swaps, 11 tail-sampled",
            "stage",
            "queue",
            "total",
            "40.0",
            "batches  1:20 4:180",
        ] {
            assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
        }
        // queue p99 8000ns → 8µs in the table.
        assert!(frame.contains(" 8 "), "{frame}");
    }

    #[test]
    fn addr_shaped_target_gets_a_pointed_error() {
        let err = run("metrics.example.com:9100", &TopOptions::default()).unwrap_err();
        assert!(err.contains("not network addresses"), "{err}");
        assert!(err.contains("--metrics-out"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = std::env::temp_dir().join(format!("mbssl-top-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.json");
        std::fs::write(&path, "{\"schema\":\"other/9\"}").unwrap();
        let opts = TopOptions { frames: Some(1), ..TopOptions::default() };
        let err = run(path.to_str().unwrap(), &opts).unwrap_err();
        assert!(err.contains("not a serve metrics snapshot"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
