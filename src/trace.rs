//! Offline analysis of `MBSSL_TRACE=jsonl:` trace files: the engine
//! behind `mbssl trace summary` and `mbssl trace diff`.
//!
//! A trace file is a sequence of JSONL records cut by
//! `mbssl_telemetry::flush_section` — `meta`, `span`, `counter`, `gauge`,
//! and `progress` lines. Span records are **parent edges**: one record per
//! `(parent, label)` pair (DESIGN.md §12), which is exactly the shape this
//! module needs to attribute *self-time* (a span's total minus its
//! children's totals) instead of double-counting nested work the way a
//! flat per-label table does.
//!
//! Three consumers:
//! - [`render_summary`] — a self-time tree (per-edge % of wall, counts,
//!   bytes) for humans;
//! - [`collapsed_stacks`] — `a;b;c <self_ns>` lines consumable by standard
//!   flamegraph tooling (`flamegraph.pl`, `inferno`, speedscope);
//! - [`diff`] — span-by-span comparison of two traces with a regression
//!   tolerance, the CI gate behind `mbssl trace diff`.

use std::collections::BTreeMap;

use serde::value::Value;

// ---------------------------------------------------------------------------
// Trace model and parsing
// ---------------------------------------------------------------------------

/// One aggregated `(parent, label)` span edge.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEdge {
    /// Label of the enclosing span (`""` for root spans).
    pub parent: String,
    /// The span's own label.
    pub label: String,
    /// Completions recorded on this edge.
    pub count: u64,
    /// Total nanoseconds across completions.
    pub total_ns: u64,
    /// Fastest single completion.
    pub min_ns: u64,
    /// Slowest single completion.
    pub max_ns: u64,
    /// Cumulative bytes attributed via `Span::add_bytes`.
    pub bytes: u64,
}

/// A parsed trace file: span edges plus counters/gauges, aggregated
/// across flush sections (or one section when filtered).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Aggregated span edges, keyed by `(parent, label)`.
    pub edges: BTreeMap<(String, String), SpanEdge>,
    /// Monotonic counters (summed across sections).
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last write wins across sections).
    pub gauges: BTreeMap<String, u64>,
    /// Flush sections seen, in file order, deduplicated.
    pub sections: Vec<String>,
    /// `git_rev` values from meta records (deduplicated).
    pub git_revs: Vec<String>,
}

fn obj_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    match obj_get(v, key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    match obj_get(v, key) {
        Some(Value::Num(n)) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

impl Trace {
    /// Parses a trace file from disk. `section`: restrict to one flush
    /// section (`None` aggregates all sections — right for single-command
    /// traces, where there is only one anyway).
    pub fn parse_file(path: &str, section: Option<&str>) -> Result<Trace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Trace::parse_str(&text, section).map_err(|e| format!("{path}: {e}"))
    }

    /// Parses trace text (one JSON record per line; blank lines allowed).
    pub fn parse_str(text: &str, section: Option<&str>) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid JSON ({e})", lineno + 1))?;
            let kind = get_str(&rec, "kind")
                .ok_or_else(|| format!("line {}: record without kind", lineno + 1))?;
            if kind == "progress" {
                continue; // free-form console lines, not aggregates
            }
            let rec_section = get_str(&rec, "section").unwrap_or_default();
            if let Some(want) = section {
                if rec_section != want {
                    continue;
                }
            }
            match kind.as_str() {
                "meta" => {
                    if !trace.sections.contains(&rec_section) {
                        trace.sections.push(rec_section);
                    }
                    if let Some(rev) = get_str(&rec, "git_rev") {
                        if !trace.git_revs.contains(&rev) {
                            trace.git_revs.push(rev);
                        }
                    }
                }
                "span" => {
                    let label = get_str(&rec, "label")
                        .ok_or_else(|| format!("line {}: span without label", lineno + 1))?;
                    // Traces cut before the hierarchy existed have no
                    // parent field; treat their spans as roots.
                    let parent = get_str(&rec, "parent").unwrap_or_default();
                    let count = get_u64(&rec, "count").unwrap_or(0);
                    let total_ns = get_u64(&rec, "total_ns").unwrap_or(0);
                    let min_ns = get_u64(&rec, "min_ns").unwrap_or(0);
                    let max_ns = get_u64(&rec, "max_ns").unwrap_or(0);
                    let bytes = get_u64(&rec, "bytes").unwrap_or(0);
                    let edge = trace
                        .edges
                        .entry((parent.clone(), label.clone()))
                        .or_insert_with(|| SpanEdge {
                            parent,
                            label,
                            count: 0,
                            total_ns: 0,
                            min_ns: u64::MAX,
                            max_ns: 0,
                            bytes: 0,
                        });
                    edge.count += count;
                    edge.total_ns += total_ns;
                    edge.min_ns = edge.min_ns.min(min_ns);
                    edge.max_ns = edge.max_ns.max(max_ns);
                    edge.bytes += bytes;
                }
                "counter" => {
                    let label = get_str(&rec, "label")
                        .ok_or_else(|| format!("line {}: counter without label", lineno + 1))?;
                    *trace.counters.entry(label).or_insert(0) += get_u64(&rec, "value").unwrap_or(0);
                }
                "gauge" => {
                    let label = get_str(&rec, "label")
                        .ok_or_else(|| format!("line {}: gauge without label", lineno + 1))?;
                    trace.gauges.insert(label, get_u64(&rec, "value").unwrap_or(0));
                }
                other => return Err(format!("line {}: unknown record kind {other:?}", lineno + 1)),
            }
        }
        Ok(trace)
    }

    /// Total wall time attributed to root spans (`parent == ""`), the
    /// denominator for `% of wall` columns. Per-thread span stacks mean
    /// worker-thread spans (`pool.job`) root here alongside the main
    /// thread's `trainer.epoch`/`eval.evaluate`.
    pub fn wall_ns(&self) -> u64 {
        self.edges
            .values()
            .filter(|e| e.parent.is_empty())
            .map(|e| e.total_ns)
            .sum()
    }

    /// Total time recorded for `label` across all of its parent edges.
    pub fn label_total_ns(&self, label: &str) -> u64 {
        self.edges
            .values()
            .filter(|e| e.label == label)
            .map(|e| e.total_ns)
            .sum()
    }

    /// Total time recorded by direct children of `label` (all edges whose
    /// parent is `label`).
    pub fn child_total_ns(&self, label: &str) -> u64 {
        self.edges
            .values()
            .filter(|e| e.parent == label)
            .map(|e| e.total_ns)
            .sum()
    }

    /// Self-time of `label`: its total minus its direct children's total
    /// (saturating — clock jitter can put children a hair above the
    /// parent).
    pub fn self_ns(&self, label: &str) -> u64 {
        self.label_total_ns(label).saturating_sub(self.child_total_ns(label))
    }
}

// ---------------------------------------------------------------------------
// Self-time tree
// ---------------------------------------------------------------------------

/// One row of the rendered self-time tree.
struct TreeRow {
    depth: usize,
    label: String,
    /// This edge's total, scaled by the path share (see module docs).
    total_ns: f64,
    self_ns: f64,
    count: u64,
    bytes: u64,
    /// True when this label also appears elsewhere and recursion stopped
    /// here to avoid double-counting.
    truncated: bool,
}

/// Walks the edge graph from the roots, proportionally attributing a
/// label's children to each of its parent edges (an edge-based profile in
/// the gprof tradition: when `kernel.gemm_nn` ran under both
/// `trainer.train_step` and `eval.score_chunk`, each occurrence shows the
/// children scaled by that edge's share of the label's total time).
fn build_tree(trace: &Trace) -> Vec<TreeRow> {
    let mut children: BTreeMap<&str, Vec<&SpanEdge>> = BTreeMap::new();
    for edge in trace.edges.values() {
        children.entry(edge.parent.as_str()).or_default().push(edge);
    }
    for list in children.values_mut() {
        list.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(&b.label)));
    }
    let mut rows = Vec::new();
    let mut path: Vec<&str> = Vec::new();
    fn visit<'t>(
        trace: &'t Trace,
        children: &BTreeMap<&str, Vec<&'t SpanEdge>>,
        rows: &mut Vec<TreeRow>,
        path: &mut Vec<&'t str>,
        edge: &'t SpanEdge,
        scale: f64,
        depth: usize,
    ) {
        let label_total = trace.label_total_ns(&edge.label);
        let child_total = trace.child_total_ns(&edge.label);
        // This edge's share of everything recorded under its label.
        let edge_share = if label_total > 0 {
            edge.total_ns as f64 / label_total as f64
        } else {
            0.0
        };
        let total = edge.total_ns as f64 * scale;
        let self_ns = (edge.total_ns.saturating_sub((child_total as f64 * edge_share) as u64))
            as f64
            * scale;
        let recursive = path.contains(&edge.label.as_str());
        let has_children = children.contains_key(edge.label.as_str());
        rows.push(TreeRow {
            depth,
            label: edge.label.clone(),
            total_ns: total,
            self_ns: if recursive && has_children { total } else { self_ns },
            count: edge.count,
            bytes: edge.bytes,
            truncated: recursive && has_children,
        });
        if recursive {
            return; // cycle guard: don't re-expand a label on its own path
        }
        if let Some(kids) = children.get(edge.label.as_str()) {
            path.push(&edge.label);
            for kid in kids {
                visit(trace, children, rows, path, kid, scale * edge_share, depth + 1);
            }
            path.pop();
        }
    }
    if let Some(roots) = children.get("") {
        for root in roots {
            visit(trace, &children, &mut rows, &mut path, root, 1.0, 0);
        }
    }
    rows
}

/// Renders the self-time tree for `mbssl trace summary`: per edge, its %
/// of wall, self-% of wall, totals, counts, and bytes, indented by depth.
pub fn render_summary(trace: &Trace) -> String {
    let rows = build_tree(trace);
    let wall = trace.wall_ns().max(1) as f64;
    let names: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut name = format!("{}{}", "  ".repeat(r.depth), r.label);
            if r.truncated {
                name.push_str(" (recursive)");
            }
            name
        })
        .collect();
    let width = names
        .iter()
        .map(|n| n.chars().count())
        .chain(["span".len()])
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$} {:>8} {:>8} {:>12} {:>12} {:>10} {:>12}\n",
        "span", "wall%", "self%", "total_ms", "self_ms", "count", "bytes"
    ));
    for (name, r) in names.iter().zip(&rows) {
        out.push_str(&format!(
            "{:<width$} {:>8.2} {:>8.2} {:>12.3} {:>12.3} {:>10} {:>12}\n",
            name,
            100.0 * r.total_ns / wall,
            100.0 * r.self_ns / wall,
            r.total_ns / 1e6,
            r.self_ns / 1e6,
            r.count,
            r.bytes
        ));
    }
    if !trace.counters.is_empty() || !trace.gauges.is_empty() {
        out.push_str(&format!("{:<width$} {:>8}\n", "counter/gauge", "value"));
        for (label, value) in trace.counters.iter().chain(trace.gauges.iter()) {
            out.push_str(&format!("{:<width$} {:>8}\n", label, value));
        }
    }
    out
}

/// Collapsed-stack ("folded") lines: `root;child;leaf <self_ns>`, one per
/// tree row with nonzero self-time, consumable by `flamegraph.pl`,
/// `inferno-flamegraph`, or speedscope.
pub fn collapsed_stacks(trace: &Trace) -> String {
    let rows = build_tree(trace);
    let mut stack: Vec<String> = Vec::new();
    let mut out = String::new();
    for r in &rows {
        stack.truncate(r.depth);
        stack.push(r.label.clone());
        let self_ns = r.self_ns as u64;
        if self_ns > 0 {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// What `diff` compares per span edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffMetric {
    /// Mean nanoseconds per completion (`total_ns / count`); tolerance is
    /// a relative percentage. The default: robust to iteration-count
    /// differences between runs.
    Mean,
    /// Total nanoseconds; tolerance is a relative percentage. Right when
    /// both traces cover the same workload (same epochs/batches).
    Total,
    /// Share of wall time in percent; tolerance is **percentage points**
    /// of wall. Machine-portable: compares where time goes, not how fast
    /// the machine is — the right metric for cross-machine CI gates.
    Share,
}

impl DiffMetric {
    /// Parses a `--metric` value.
    pub fn parse(s: &str) -> Result<DiffMetric, String> {
        match s {
            "mean" => Ok(DiffMetric::Mean),
            "total" => Ok(DiffMetric::Total),
            "share" => Ok(DiffMetric::Share),
            other => Err(format!("unknown metric {other:?} (expected mean | total | share)")),
        }
    }
}

/// Knobs for [`diff`].
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Allowed regression before an edge fails the diff: relative percent
    /// for `mean`/`total`, percentage points of wall for `share`.
    pub tol_pct: f64,
    pub metric: DiffMetric,
    /// Edges below this share of wall (in both traces) are reported but
    /// never gate: sub-noise-floor spans jitter wildly in relative terms.
    pub min_share_pct: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tol_pct: std::env::var("MBSSL_BENCH_TOL_PCT")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(2.0),
            metric: DiffMetric::Mean,
            min_share_pct: 1.0,
        }
    }
}

/// Per-edge outcome of a [`diff`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance (or improved).
    Ok,
    /// Regressed beyond tolerance — gates the exit code.
    Regressed,
    /// Present only in the new trace (informational, never gates: there
    /// is nothing to regress against).
    New,
    /// Present only in the base trace (informational).
    Removed,
    /// Below the share floor in both traces, or zero-count — compared but
    /// never gates.
    BelowFloor,
}

/// One compared span edge.
#[derive(Clone, Debug)]
pub struct DiffRow {
    pub parent: String,
    pub label: String,
    /// Metric value in the base trace (ns or share-%, per the metric).
    pub base: f64,
    /// Metric value in the new trace.
    pub new: f64,
    /// Relative % change for `mean`/`total`, share-point change for
    /// `share`. Positive = slower/bigger.
    pub delta: f64,
    pub status: DiffStatus,
}

/// Result of comparing two traces span-by-span.
#[derive(Clone, Debug)]
pub struct DiffReport {
    pub rows: Vec<DiffRow>,
    pub metric: DiffMetric,
    pub tol_pct: f64,
    /// Number of rows with [`DiffStatus::Regressed`]; nonzero means the
    /// diff fails.
    pub regressions: usize,
}

/// Compares two parsed traces edge-by-edge under `opts`. An edge
/// regresses when its metric worsens beyond `tol_pct` *and* it is above
/// the share noise floor in at least one trace; edges missing from either
/// side and zero-count edges are reported but never gate.
pub fn diff(base: &Trace, new: &Trace, opts: &DiffOptions) -> DiffReport {
    let base_wall = base.wall_ns().max(1) as f64;
    let new_wall = new.wall_ns().max(1) as f64;
    let mut keys: Vec<&(String, String)> = base.edges.keys().collect();
    for k in new.edges.keys() {
        if !base.edges.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();
    let mut rows = Vec::new();
    let mut regressions = 0usize;
    for key in keys {
        let b = base.edges.get(key);
        let n = new.edges.get(key);
        let metric_of = |e: &SpanEdge, wall: f64| -> Option<f64> {
            match opts.metric {
                DiffMetric::Mean => {
                    if e.count == 0 {
                        None // zero-count edge: no meaningful per-call time
                    } else {
                        Some(e.total_ns as f64 / e.count as f64)
                    }
                }
                DiffMetric::Total => Some(e.total_ns as f64),
                DiffMetric::Share => Some(100.0 * e.total_ns as f64 / wall),
            }
        };
        let (status, base_v, new_v, delta) = match (b, n) {
            (None, Some(e)) => (DiffStatus::New, 0.0, metric_of(e, new_wall).unwrap_or(0.0), 0.0),
            (Some(e), None) => {
                (DiffStatus::Removed, metric_of(e, base_wall).unwrap_or(0.0), 0.0, 0.0)
            }
            (Some(be), Some(ne)) => {
                let share_b = 100.0 * be.total_ns as f64 / base_wall;
                let share_n = 100.0 * ne.total_ns as f64 / new_wall;
                match (metric_of(be, base_wall), metric_of(ne, new_wall)) {
                    (Some(bv), Some(nv)) => {
                        let delta = match opts.metric {
                            DiffMetric::Share => nv - bv,
                            _ => {
                                if bv == 0.0 {
                                    if nv == 0.0 {
                                        0.0
                                    } else {
                                        f64::INFINITY
                                    }
                                } else {
                                    100.0 * (nv - bv) / bv
                                }
                            }
                        };
                        let significant = share_b.max(share_n) >= opts.min_share_pct;
                        let status = if !significant {
                            DiffStatus::BelowFloor
                        } else if delta > opts.tol_pct {
                            DiffStatus::Regressed
                        } else {
                            DiffStatus::Ok
                        };
                        (status, bv, nv, delta)
                    }
                    // Zero-count on either side under the mean metric.
                    _ => (DiffStatus::BelowFloor, 0.0, 0.0, 0.0),
                }
            }
            (None, None) => unreachable!("key from union of both maps"),
        };
        if status == DiffStatus::Regressed {
            regressions += 1;
        }
        rows.push(DiffRow {
            parent: key.0.clone(),
            label: key.1.clone(),
            base: base_v,
            new: new_v,
            delta,
            status,
        });
    }
    DiffReport { rows, metric: opts.metric, tol_pct: opts.tol_pct, regressions }
}

/// Renders a [`DiffReport`] as a table, regressions first.
pub fn render_diff(report: &DiffReport) -> String {
    let unit = match report.metric {
        DiffMetric::Mean => ("base_us/op", "new_us/op", 1e-3),
        DiffMetric::Total => ("base_ms", "new_ms", 1e-6),
        DiffMetric::Share => ("base_%wall", "new_%wall", 1.0),
    };
    let mut rows: Vec<&DiffRow> = report.rows.iter().collect();
    rows.sort_by(|a, b| {
        let rank = |s: DiffStatus| match s {
            DiffStatus::Regressed => 0,
            DiffStatus::Ok => 1,
            DiffStatus::New => 2,
            DiffStatus::Removed => 3,
            DiffStatus::BelowFloor => 4,
        };
        rank(a.status)
            .cmp(&rank(b.status))
            .then(b.delta.partial_cmp(&a.delta).unwrap_or(std::cmp::Ordering::Equal))
    });
    let names: Vec<String> = rows
        .iter()
        .map(|r| {
            if r.parent.is_empty() {
                r.label.clone()
            } else {
                format!("{} > {}", r.parent, r.label)
            }
        })
        .collect();
    let width = names
        .iter()
        .map(|n| n.chars().count())
        .chain(["span".len()])
        .max()
        .unwrap_or(4);
    let delta_header = match report.metric {
        DiffMetric::Share => "delta_pts",
        _ => "delta_%",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$} {:>12} {:>12} {:>10} {:>10}\n",
        "span", unit.0, unit.1, delta_header, "status"
    ));
    for (name, r) in names.iter().zip(&rows) {
        let status = match r.status {
            DiffStatus::Ok => "ok",
            DiffStatus::Regressed => "REGRESSED",
            DiffStatus::New => "new",
            DiffStatus::Removed => "removed",
            DiffStatus::BelowFloor => "floor",
        };
        out.push_str(&format!(
            "{:<width$} {:>12.3} {:>12.3} {:>+10.2} {:>10}\n",
            name,
            r.base * unit.2,
            r.new * unit.2,
            r.delta,
            status
        ));
    }
    out.push_str(&format!(
        "{} edges compared, {} regression(s) beyond {}{} tolerance\n",
        report.rows.len(),
        report.regressions,
        report.tol_pct,
        match report.metric {
            DiffMetric::Share => " share-point",
            _ => "%",
        }
    ));
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(section: &str, parent: &str, label: &str, count: u64, total: u64) -> String {
        format!(
            "{{\"kind\":\"span\",\"section\":\"{section}\",\"label\":\"{label}\",\
             \"parent\":\"{parent}\",\"count\":{count},\"total_ns\":{total},\
             \"min_ns\":1,\"max_ns\":{total},\"bytes\":0}}"
        )
    }

    /// A synthetic two-level trace: root epoch (1000ns) with train_step
    /// (800) and eval (100) children; train_step has a gemm child (600).
    fn sample_trace(step_total: u64, gemm_total: u64) -> Trace {
        let text = [
            "{\"kind\":\"meta\",\"section\":\"train\",\"git_rev\":\"abc\",\"unix_time_s\":1,\"cores\":4,\"env\":{}}".to_string(),
            span_line("train", "", "trainer.epoch", 2, 1000),
            span_line("train", "trainer.epoch", "trainer.train_step", 10, step_total),
            span_line("train", "trainer.epoch", "eval.evaluate", 1, 100),
            span_line("train", "trainer.train_step", "kernel.gemm_nn", 40, gemm_total),
            "{\"kind\":\"gauge\",\"section\":\"train\",\"label\":\"alloc.hits\",\"value\":7}".to_string(),
            "{\"kind\":\"progress\",\"message\":\"epoch 0\",\"unix_time_s\":2}".to_string(),
        ]
        .join("\n");
        Trace::parse_str(&text, None).unwrap()
    }

    #[test]
    fn parse_aggregates_edges_and_skips_progress() {
        let t = sample_trace(800, 600);
        assert_eq!(t.edges.len(), 4);
        assert_eq!(t.wall_ns(), 1000);
        assert_eq!(t.gauges.get("alloc.hits"), Some(&7));
        assert_eq!(t.git_revs, vec!["abc".to_string()]);
        let step = &t.edges[&("trainer.epoch".to_string(), "trainer.train_step".to_string())];
        assert_eq!((step.count, step.total_ns), (10, 800));
    }

    #[test]
    fn self_time_is_total_minus_children() {
        let t = sample_trace(800, 600);
        // epoch: total 1000, children 800 + 100 → self 100
        assert_eq!(t.self_ns("trainer.epoch"), 100);
        // train_step: total 800, child gemm 600 → self 200
        assert_eq!(t.self_ns("trainer.train_step"), 200);
        // leaf: self == total
        assert_eq!(t.self_ns("kernel.gemm_nn"), 600);
        // The tree preserves the identity: self + children == total.
        let summary = render_summary(&t);
        assert!(summary.contains("trainer.epoch"), "{summary}");
        assert!(summary.contains("  trainer.train_step"), "missing indented child:\n{summary}");
        assert!(summary.contains("    kernel.gemm_nn"), "missing grandchild:\n{summary}");
    }

    #[test]
    fn collapsed_stacks_emit_full_paths() {
        let t = sample_trace(800, 600);
        let folded = collapsed_stacks(&t);
        assert!(
            folded.contains("trainer.epoch;trainer.train_step;kernel.gemm_nn 600"),
            "{folded}"
        );
        assert!(folded.contains("trainer.epoch;trainer.train_step 200"), "{folded}");
        assert!(folded.contains("trainer.epoch 100"), "{folded}");
        // Folded values partition wall time exactly.
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, t.wall_ns());
    }

    #[test]
    fn identical_traces_diff_clean() {
        let t = sample_trace(800, 600);
        let report = diff(&t, &t, &DiffOptions { tol_pct: 2.0, metric: DiffMetric::Mean, min_share_pct: 1.0 });
        assert_eq!(report.regressions, 0, "{:#?}", report.rows);
        assert!(report.rows.iter().all(|r| r.delta == 0.0));
    }

    #[test]
    fn slowed_span_regresses_beyond_tolerance() {
        let base = sample_trace(800, 600);
        let slowed = sample_trace(1600, 1400); // gemm 600 → 1400 ns, same counts
        let report = diff(&base, &slowed, &DiffOptions { tol_pct: 2.0, metric: DiffMetric::Mean, min_share_pct: 1.0 });
        assert!(report.regressions >= 1, "{}", render_diff(&report));
        let gemm = report
            .rows
            .iter()
            .find(|r| r.label == "kernel.gemm_nn")
            .unwrap();
        assert_eq!(gemm.status, DiffStatus::Regressed);
        assert!((gemm.delta - 133.33).abs() < 0.1, "delta {}", gemm.delta);
        // Share metric flags it too: gemm's share of wall jumped.
        let report = diff(&base, &slowed, &DiffOptions { tol_pct: 2.0, metric: DiffMetric::Share, min_share_pct: 1.0 });
        assert!(report.regressions >= 1, "{}", render_diff(&report));
    }

    #[test]
    fn missing_span_in_base_is_informational_not_regression() {
        let base = sample_trace(800, 600);
        let mut text = [
            span_line("train", "", "trainer.epoch", 2, 1000),
            span_line("train", "trainer.epoch", "trainer.train_step", 10, 800),
            span_line("train", "trainer.epoch", "eval.evaluate", 1, 100),
            span_line("train", "trainer.train_step", "kernel.gemm_nn", 40, 600),
            span_line("train", "trainer.train_step", "kernel.sdpa", 5, 50),
        ]
        .join("\n");
        text.push('\n');
        let new = Trace::parse_str(&text, None).unwrap();
        let report = diff(&base, &new, &DiffOptions::default());
        let sdpa = report.rows.iter().find(|r| r.label == "kernel.sdpa").unwrap();
        assert_eq!(sdpa.status, DiffStatus::New);
        assert_eq!(report.regressions, 0, "{}", render_diff(&report));
        // And the reverse direction reports it as removed, still clean.
        let report = diff(&new, &base, &DiffOptions::default());
        let sdpa = report.rows.iter().find(|r| r.label == "kernel.sdpa").unwrap();
        assert_eq!(sdpa.status, DiffStatus::Removed);
        assert_eq!(report.regressions, 0);
    }

    #[test]
    fn zero_count_spans_never_gate() {
        let base_text = span_line("t", "", "weird.zero", 0, 0);
        let new_text = span_line("t", "", "weird.zero", 0, 500);
        let base = Trace::parse_str(&base_text, None).unwrap();
        let new = Trace::parse_str(&new_text, None).unwrap();
        let report = diff(
            &base,
            &new,
            &DiffOptions { tol_pct: 2.0, metric: DiffMetric::Mean, min_share_pct: 1.0 },
        );
        assert_eq!(report.regressions, 0, "{}", render_diff(&report));
        assert_eq!(report.rows[0].status, DiffStatus::BelowFloor);
    }

    #[test]
    fn below_floor_spans_never_gate() {
        // A 0.1%-of-wall span that triples must not fail the diff.
        let base_text = [
            span_line("t", "", "big.root", 10, 1_000_000),
            span_line("t", "big.root", "tiny.leaf", 10, 1_000),
        ]
        .join("\n");
        let new_text = [
            span_line("t", "", "big.root", 10, 1_000_000),
            span_line("t", "big.root", "tiny.leaf", 10, 3_000),
        ]
        .join("\n");
        let base = Trace::parse_str(&base_text, None).unwrap();
        let new = Trace::parse_str(&new_text, None).unwrap();
        let report = diff(
            &base,
            &new,
            &DiffOptions { tol_pct: 2.0, metric: DiffMetric::Mean, min_share_pct: 1.0 },
        );
        assert_eq!(report.regressions, 0, "{}", render_diff(&report));
        let leaf = report.rows.iter().find(|r| r.label == "tiny.leaf").unwrap();
        assert_eq!(leaf.status, DiffStatus::BelowFloor);
    }

    #[test]
    fn section_filter_restricts_aggregation() {
        let text = [
            span_line("a", "", "x", 1, 100),
            span_line("b", "", "x", 1, 900),
        ]
        .join("\n");
        let all = Trace::parse_str(&text, None).unwrap();
        assert_eq!(all.wall_ns(), 1000);
        let only_a = Trace::parse_str(&text, Some("a")).unwrap();
        assert_eq!(only_a.wall_ns(), 100);
    }

    #[test]
    fn legacy_traces_without_parent_parse_as_roots() {
        let text = "{\"kind\":\"span\",\"section\":\"s\",\"label\":\"old.span\",\
                    \"count\":1,\"total_ns\":10,\"min_ns\":10,\"max_ns\":10,\"bytes\":0}";
        let t = Trace::parse_str(text, None).unwrap();
        assert_eq!(t.edges[&(String::new(), "old.span".to_string())].total_ns, 10);
        assert_eq!(t.wall_ns(), 10);
    }
}
