//! `mbssl` — facade crate for the Multi-Behavior Multi-Interest
//! Self-Supervised Learning recommender workspace.
//!
//! Re-exports the workspace crates under one roof:
//! - [`tensor`]: the from-scratch autodiff engine and NN layers;
//! - [`hypergraph`]: incidence structures and hypergraph transformers;
//! - [`data`]: datasets, synthetic generators, sampling, augmentation;
//! - [`metrics`]: ranking metrics and significance tests;
//! - [`core`]: the MBMISSL model, trainer, and evaluator;
//! - [`baselines`]: the comparison zoo;
//! - [`telemetry`]: spans, counters, and JSONL traces (`MBSSL_TRACE`).
//!
//! See `examples/quickstart.rs` for an end-to-end train-and-evaluate run.

pub mod top;
pub mod trace;

pub use mbssl_baselines as baselines;
pub use mbssl_core as core;
pub use mbssl_data as data;
pub use mbssl_hypergraph as hypergraph;
pub use mbssl_metrics as metrics;
pub use mbssl_telemetry as telemetry;
pub use mbssl_tensor as tensor;
