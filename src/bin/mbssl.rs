//! `mbssl` command-line interface: train, evaluate, and serve
//! recommendations on your own TSV interaction logs, plus trace analysis
//! and run-ledger reporting.
//!
//! ```text
//! mbssl train     --data log.tsv --target favorite --model out.ckpt [--epochs N] [--dim D] [--interests K] [--run-dir DIR]
//! mbssl evaluate  --data log.tsv --target favorite --model out.ckpt
//! mbssl recommend --data log.tsv --target favorite --model out.ckpt --user 42 --top 10
//! mbssl serve     --data log.tsv --target favorite --model out.ckpt [--replay FILE] [--rerank SPEC] [--top N] [--metrics-out FILE]
//! mbssl top       snapshot.json [--interval MS] [--frames N] [--no-clear]
//! mbssl stats     --data log.tsv --target favorite
//! mbssl synth     --out log.tsv [--preset taobao|yelp] [--scale F] [--seed S]
//! mbssl index build --data log.tsv --target favorite --model out.ckpt [--out out.ckpt.ivf] [--nlist N]
//! mbssl index stats INDEX.ivf
//! mbssl trace summary trace.jsonl [--section S] [--collapsed OUT.folded]
//! mbssl trace diff base.jsonl new.jsonl [--tol PCT] [--metric mean|total|share] [--min-share PCT]
//! mbssl report RUN_DIR [RUN_DIR...]
//! ```
//!
//! TSV format: `user \t item \t behavior \t timestamp` with behaviors in
//! {click, cart, favorite, purchase}; a header line is allowed.
//!
//! `mbssl serve` runs the micro-batched request engine (DESIGN.md §15)
//! over a line protocol read from `--replay FILE` or stdin:
//!
//! ```text
//! rec USER [N]              top-N request; consecutive `rec` lines form one
//!                           concurrent wave (replies print in input order)
//! event USER ITEM BEHAVIOR  append one event to USER's session
//! swap CKPT                 hot-swap the serving engine from a checkpoint
//! mark                      start of the steady-state window (resets the
//!                           size-class allocator counters)
//! stats                     print server counters to stderr
//! metrics [json|prom] [PATH] write a metrics snapshot (DESIGN.md §17) to
//!                           PATH (atomic tmp+rename), or to stderr
//! quit                      drain and shut down (EOF does the same)
//! ```
//!
//! Recommendation lines on stdout match `mbssl recommend` exactly; all
//! serving diagnostics (batch sizes, cache hits, counters, the
//! steady-state allocation report) go to stderr, so replay output is
//! byte-diffable across batching configurations. Tuning comes from the
//! `MBSSL_SERVE_BATCH` / `MBSSL_SERVE_WAIT_US` / `MBSSL_SERVE_WORKERS` /
//! `MBSSL_SERVE_CACHE` / `MBSSL_ANN_BUDGET_US` environment; tail
//! sampling of slow requests from `MBSSL_SERVE_SLOW_US` /
//! `MBSSL_SERVE_SAMPLE` (records land in `MBSSL_RUN_DIR/serve_slow.jsonl`
//! or on stderr). `--metrics-out FILE` rewrites FILE with a JSON snapshot
//! every `--metrics-interval` ms (default 1000) for `mbssl top FILE`.
//!
//! Every command accepts `--trace MODE` (`off`, `summary`, or
//! `jsonl:<path>`), equivalent to setting `MBSSL_TRACE`: `summary` prints a
//! span table to stderr on exit, `jsonl:<path>` appends machine-readable
//! trace records to `<path>`. `mbssl trace summary`/`diff` analyze those
//! JSONL files after the fact; `trace diff` exits nonzero when any span
//! regresses beyond the tolerance (default `MBSSL_BENCH_TOL_PCT`, else 2%).

use std::collections::HashSet;
use std::process::ExitCode;

use mbssl::core::{
    evaluate, recommend_top_n, BehaviorSchema, InferenceModel, IvfIndex, Mbmissl, ModelConfig,
    TrainConfig, Trainer,
};
use mbssl::data::format::MbdsFile;
use mbssl::data::io::load_tsv;
use mbssl::data::preprocess::{
    convert_tsv_in_memory, convert_tsv_streaming, k_core, leave_one_out, ConvertError,
    SplitConfig,
};
use mbssl::data::sampler::{EvalCandidates, NegativeSampler};
use mbssl::data::{Behavior, Dataset};
use mbssl::trace::{collapsed_stacks, diff, render_diff, render_summary, DiffMetric, DiffOptions, Trace};

struct Args {
    command: String,
    /// Bare (non `--flag`) arguments after the command, in order — e.g.
    /// the subcommand and file paths of `trace diff base.jsonl new.jsonl`.
    positionals: Vec<String>,
    values: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut argv = std::env::args().skip(1);
        let command = argv.next()?;
        let mut positionals = Vec::new();
        let mut values = Vec::new();
        let mut key: Option<String> = None;
        for arg in argv {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some(k) = key.take() {
                    values.push((k, "true".to_string()));
                }
                key = Some(stripped.to_string());
            } else if let Some(k) = key.take() {
                values.push((k, arg));
            } else {
                positionals.push(arg);
            }
        }
        if let Some(k) = key.take() {
            values.push((k, "true".to_string()));
        }
        Some(Args { command, positionals, values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positionals
            .get(index)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what} argument"))
    }
}

fn usage() {
    eprintln!(
        "usage:\n  \
         mbssl train     --data LOG.tsv --target BEHAVIOR --model OUT.ckpt \
[--epochs N] [--dim D] [--interests K] [--seed S] [--run-dir DIR]\n  \
         mbssl evaluate  --data LOG.tsv --target BEHAVIOR --model IN.ckpt\n  \
         mbssl recommend --data LOG.tsv --target BEHAVIOR --model IN.ckpt --user U [--top N] [--index PATH.ivf]\n  \
         mbssl serve     --data LOG.tsv --target BEHAVIOR --model IN.ckpt [--replay FILE] [--rerank SPEC] [--top N] [--index PATH.ivf] [--metrics-out FILE [--metrics-interval MS]]\n  \
         mbssl top       SNAPSHOT.json [--interval MS] [--frames N] [--no-clear]\n  \
         mbssl stats     --data LOG.tsv --target BEHAVIOR\n  \
         mbssl synth     --out LOG.tsv|OUT.mbds [--preset taobao|yelp|tmall|scale-10k|scale-100k|scale-1m] [--users N] [--scale F] [--seed S]\n  \
         mbssl convert   --data LOG.tsv --target BEHAVIOR [--out PATH.mbds] [--k-user N] [--k-item N]\n  \
         mbssl dataset stats PATH.mbds|LOG.tsv [--target BEHAVIOR]\n  \
         mbssl index build --data LOG.tsv --target BEHAVIOR --model IN.ckpt [--out PATH.ivf] [--nlist N] [--seed S]\n  \
         mbssl index stats INDEX.ivf\n  \
         mbssl trace summary TRACE.jsonl [--section S] [--collapsed OUT.folded]\n  \
         mbssl trace diff BASE.jsonl NEW.jsonl [--tol PCT] [--metric mean|total|share] [--min-share PCT] [--section S]\n  \
         mbssl report RUN_DIR [RUN_DIR...]\n\n\
         BEHAVIOR ∈ {{click, cart, favorite, purchase}}\n\
         --data also accepts a .mbds file (mmap'd columnar, from `mbssl convert`); a `LOG.tsv.mbds`\n\
         sibling is auto-discovered next to a TSV unless MBSSL_DATA_MMAP=off\n\
         all commands accept --trace off|summary|jsonl:PATH (telemetry; see also MBSSL_TRACE);\n\
         train writes a run ledger when --run-dir or MBSSL_RUN_DIR is set (read back by `mbssl report`)"
    );
}

/// Opens a `.mbds` file the user named explicitly (hard error on any
/// rejection — there is no TSV to degrade to). `.mbds` files store the
/// target behavior, so `--target` is optional and cross-checked when given.
fn load_mbds(path: &str, requested: Option<Behavior>) -> Result<(Dataset, Behavior), String> {
    let file =
        MbdsFile::open(std::path::Path::new(path)).map_err(|e| format!("loading {path}: {e}"))?;
    let target = file.target_behavior();
    if let Some(req) = requested {
        if req != target {
            return Err(format!(
                "--target {} but {path} was converted for target {}",
                req.token(),
                target.token()
            ));
        }
    }
    let dataset = file.to_dataset();
    if dataset.num_users == 0 {
        return Err(format!("{path} contains no users"));
    }
    Ok((dataset, target))
}

/// Loads `--data`: a `.mbds` file directly, a TSV with an auto-discovered
/// `<data>.mbds` sibling (produced by `mbssl convert`; skipped under
/// `MBSSL_DATA_MMAP=off`, warn-and-degrade on any mismatch), or a plain TSV
/// parsed and 5/3-core filtered. A sibling is only trusted when it is
/// provably equivalent to parsing the named TSV: it must not be older than
/// the TSV (staleness by mtime), must record the default 5/3 k-core
/// thresholds in its header, and must match the requested target — anything
/// else warns and parses the TSV. Under those checks the result is
/// identical to the TSV path because k-core is idempotent.
fn load_dataset(args: &Args) -> Result<(Dataset, Behavior), String> {
    let path = args.require("data")?;
    let requested = match args.get("target") {
        Some(tok) => Some(
            Behavior::from_token(tok).ok_or_else(|| "unknown --target behavior".to_string())?,
        ),
        None => None,
    };
    if path.ends_with(".mbds") {
        return load_mbds(path, requested);
    }
    let target = requested.ok_or_else(|| "missing --target".to_string())?;
    let sibling = format!("{path}.mbds");
    if mbssl::data::format::mmap_enabled() && std::path::Path::new(&sibling).exists() {
        let mtime = |p: &str| std::fs::metadata(p).and_then(|m| m.modified()).ok();
        let stale = matches!(
            (mtime(path), mtime(&sibling)),
            (Some(tsv_t), Some(sib_t)) if tsv_t > sib_t
        );
        if stale {
            eprintln!(
                "warning: ignoring {sibling}: {path} was modified after it was converted \
                 (re-run `mbssl convert` to refresh); parsing {path}"
            );
            return load_plain_tsv(path, target);
        }
        match MbdsFile::open(std::path::Path::new(&sibling)) {
            Ok(file) if file.target_behavior() == target
                && file.kcore_thresholds() != Some((5, 3)) =>
            {
                eprintln!(
                    "warning: ignoring {sibling}: converted with {} k-core thresholds, \
                     auto-discovery requires the default 5/3; parsing {path}",
                    match file.kcore_thresholds() {
                        Some((ku, ki)) => format!("{ku}/{ki}"),
                        None => "unspecified".to_string(),
                    }
                );
            }
            Ok(file) if file.target_behavior() == target => {
                eprintln!(
                    "data: using {sibling} ({} events, {}; delete it or set MBSSL_DATA_MMAP=off to parse the TSV)",
                    file.num_events(),
                    if file.is_mmap() { "mmap" } else { "buffered" },
                );
                let dataset = file.to_dataset();
                if dataset.num_users == 0 {
                    return Err(format!("{sibling} contains no users"));
                }
                return Ok((dataset, target));
            }
            Ok(file) => eprintln!(
                "warning: ignoring {sibling}: converted for target {}, requested {}; parsing {path}",
                file.target_behavior().token(),
                target.token()
            ),
            Err(e) => eprintln!("warning: ignoring {sibling}: {e}; parsing {path}"),
        }
    }
    load_plain_tsv(path, target)
}

/// Parses a TSV log and applies the default 5/3-core filtering (the
/// fallback for every rejected or absent `.mbds` sibling).
fn load_plain_tsv(path: &str, target: Behavior) -> Result<(Dataset, Behavior), String> {
    let raw = load_tsv(path, target).map_err(|e| format!("loading {path}: {e}"))?;
    let dataset = k_core(&raw, 5, 3);
    if dataset.num_users == 0 {
        return Err("no users survive 5/3-core filtering".into());
    }
    Ok((dataset, target))
}

/// Streams a synthetic log to `path` as TSV, one user at a time, without
/// materializing the full dataset. The byte format is identical to the old
/// in-memory writer: a header line then `user\titem\tbehavior\tindex` rows
/// with the per-user event index as the timestamp — already user-sorted, so
/// the streaming converter's single-census path accepts it. Returns
/// `(users, events)` written.
fn write_synth_tsv(
    config: &mbssl::data::synthetic::SyntheticConfig,
    path: &str,
) -> Result<(usize, usize), String> {
    use std::io::Write;
    let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    let mut events = 0usize;
    let mut users = 0usize;
    let mut io_err: Option<std::io::Error> = None;
    out.write_all(b"user\titem\tbehavior\ttimestamp\n")
        .map_err(|e| format!("writing {path}: {e}"))?;
    config.for_each_user(|user, seq, _noise| {
        if io_err.is_some() {
            return;
        }
        users += 1;
        for (t, (&item, &behavior)) in seq.items.iter().zip(seq.behaviors.iter()).enumerate() {
            if let Err(e) =
                writeln!(out, "{user}\t{item}\t{}\t{t}", behavior.token())
            {
                io_err = Some(e);
                return;
            }
            events += 1;
        }
    });
    if let Some(e) = io_err {
        return Err(format!("writing {path}: {e}"));
    }
    out.flush().map_err(|e| format!("writing {path}: {e}"))?;
    Ok((users, events))
}

/// One-line stderr note for scoring commands: whether they run on the
/// compiled inference engine (`MBSSL_INFER`) and with which catalog
/// quantization (`MBSSL_QUANT`).
fn engine_banner() -> String {
    if mbssl::core::infer::enabled() {
        format!(
            "scoring via inference engine (MBSSL_INFER=on, quant={:?}; set MBSSL_INFER=off for the autograd path)",
            mbssl::tensor::quant::mode()
        )
    } else {
        "scoring via autograd path (MBSSL_INFER=off)".to_string()
    }
}

fn model_config(args: &Args, seed: u64) -> ModelConfig {
    ModelConfig {
        dim: args.get_or("dim", "32").parse().expect("--dim must be an integer"),
        heads: 2,
        num_layers: 1,
        ffn_hidden: 2 * args.get_or("dim", "32").parse::<usize>().unwrap(),
        num_interests: args
            .get_or("interests", "4")
            .parse()
            .expect("--interests must be an integer"),
        extractor_hidden: args.get_or("dim", "32").parse().unwrap(),
        seed,
        ..ModelConfig::default()
    }
}

/// `mbssl serve`: the micro-batched request engine over a line protocol
/// (see the module docs for the command set). Consecutive `rec` lines are
/// submitted as one concurrent wave — that concurrency is what the
/// batcher converts into shared encoder forwards — and replies print in
/// input order so replay output is deterministic.
/// Write-then-rename so `mbssl top` (or any scraper) polling the file
/// never reads a torn snapshot.
fn write_snapshot_atomic(path: &std::path::Path, body: &str) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{body}\n")).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming {}: {e}", tmp.display()))
}

fn serve_command(args: &Args, seed: u64) -> Result<(), String> {
    use std::io::BufRead;
    use std::sync::Arc;

    use mbssl::core::serve::{RerankChain, ServeConfig, ServeStats, Server, SessionStore};

    let (dataset, target) = load_dataset(args)?;
    let ckpt = args.require("model")?.to_string();
    if !mbssl::core::infer::enabled() {
        return Err("serve needs the compiled engine; unset MBSSL_INFER=off".into());
    }
    let top_default: usize = args.get_or("top", "10").parse().map_err(|_| "bad --top")?;
    let chain = RerankChain::parse(args.get_or("rerank", ""))
        .map_err(|e| format!("bad --rerank: {e}"))?;
    let config = ServeConfig::from_env();
    let metrics_out = args.get("metrics-out").map(std::path::PathBuf::from);
    let metrics_interval_ms: u64 = args
        .get_or("metrics-interval", "1000")
        .parse()
        .map_err(|_| "bad --metrics-interval")?;

    // Compiles a checkpoint into a serving engine, attaching `--index`
    // (or the `<ckpt>.ivf` sibling) with recommend's warn-and-degrade
    // semantics.
    let build_engine = |ckpt: &str| -> Result<InferenceModel, String> {
        let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
        let model = Mbmissl::new(dataset.num_items, schema, model_config(args, seed));
        model.load(ckpt).map_err(|e| format!("loading {ckpt}: {e}"))?;
        let mut engine = InferenceModel::compile(&model);
        let index_path = args.get("index").map(String::from).or_else(|| {
            let implied = format!("{ckpt}.ivf");
            std::path::Path::new(&implied).exists().then_some(implied)
        });
        if let (Some(path), true) = (index_path, mbssl::core::ann::enabled()) {
            match IvfIndex::load_from_file(&path).and_then(|ix| engine.attach_index(ix)) {
                Ok(()) => eprintln!("serve: two-stage retrieval via {path}"),
                Err(e) => eprintln!("serve: warning: ignoring index {path}: {e}"),
            }
        }
        Ok(engine)
    };

    let server = Server::start(
        build_engine(&ckpt)?,
        Arc::new(SessionStore::from_dataset(&dataset)),
        chain,
        config.clone(),
    );
    eprintln!("{}", engine_banner());
    eprintln!(
        "serve: up — {} sessions, batch≤{}, wait {}µs, {} workers, cache {}",
        dataset.num_users,
        config.max_batch,
        config.wait.as_micros(),
        config.workers,
        if config.cache { "on" } else { "off" },
    );

    let input: Box<dyn BufRead> = match args.get("replay") {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    let print_stats = |s: &ServeStats| {
        eprintln!(
            "serve: {} requests in {} batches (mean {:.2}/batch), cache hit rate {:.0}%, \
             {} swaps, {} degraded",
            s.requests,
            s.batches,
            s.mean_batch(),
            100.0 * s.cache_hit_rate(),
            s.swaps,
            s.ann_degraded,
        );
        // Batch sizes ≤ 32 land in exact unit-width histogram buckets,
        // so `lower` IS the batch size at any realistic MBSSL_SERVE_BATCH.
        let hist: Vec<String> = s
            .batch
            .nonzero_buckets()
            .map(|b| format!("{}:{}", b.lower, b.count))
            .collect();
        eprintln!("serve: batch histogram: {}", hist.join(" "));
    };

    // Flushes one wave of consecutive `rec` lines: submit concurrently,
    // print replies in input order.
    let flush_wave = |wave: &mut Vec<(u32, usize)>| -> Result<(), String> {
        if wave.is_empty() {
            return Ok(());
        }
        let server = &server;
        let replies: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .iter()
                .map(|&(user, n)| scope.spawn(move || server.submit(user, n)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (&(user, n), reply) in wave.iter().zip(replies) {
            let reply = reply.map_err(|e| format!("rec {user}: {e}"))?;
            println!("top-{n} recommendations for user {user}:");
            for (rank, rec) in reply.recs.iter().enumerate() {
                println!("  {:>2}. item {:>6}  score {:.4}", rank + 1, rec.item, rec.score);
            }
            eprintln!(
                "serve: rec user={user} batch={} cache={} epoch={}{}",
                reply.batch_size,
                if reply.cache_hit { "hit" } else { "miss" },
                reply.epoch,
                if reply.degraded { " degraded" } else { "" },
            );
        }
        wave.clear();
        Ok(())
    };

    // The protocol loop runs inside a scope so an optional snapshot
    // writer (`--metrics-out`) can borrow the server alongside it; the
    // stop flag quiesces the writer on any exit path before the scope
    // joins it.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let marked = std::thread::scope(|scope| {
        if let Some(path) = &metrics_out {
            let (server, stop) = (&server, &stop);
            scope.spawn(move || {
                use std::sync::atomic::Ordering;
                while !stop.load(Ordering::Relaxed) {
                    let _ = write_snapshot_atomic(path, &server.metrics_snapshot().to_json());
                    // Sleep in short slices so shutdown is prompt even
                    // with a long interval.
                    let mut left = metrics_interval_ms.max(1);
                    while left > 0 && !stop.load(Ordering::Relaxed) {
                        let step = left.min(50);
                        std::thread::sleep(std::time::Duration::from_millis(step));
                        left -= step;
                    }
                }
                // A final write so the file reflects the complete run.
                let _ = write_snapshot_atomic(path, &server.metrics_snapshot().to_json());
            });
        }
        let protocol_loop = || -> Result<bool, String> {
            let mut wave: Vec<(u32, usize)> = Vec::new();
            let mut marked = false;
            for (line_no, line) in input.lines().enumerate() {
                let line = line.map_err(|e| format!("reading input: {e}"))?;
                let line = line.trim();
                let mut err = |msg: String| format!("line {}: {msg}", line_no + 1);
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens[0] != "rec" {
                    flush_wave(&mut wave)?;
                }
                match tokens[0] {
                    "rec" => {
                        let user: u32 = tokens
                            .get(1)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err("rec needs a user id".into()))?;
                        let n: usize = match tokens.get(2) {
                            Some(t) => {
                                t.parse().map_err(|_| err(format!("bad top count {t:?}")))?
                            }
                            None => top_default,
                        };
                        wave.push((user, n.max(1)));
                    }
                    "event" => {
                        let (user, item, behavior) = match tokens[1..] {
                            [u, i, b] => (
                                u.parse::<u32>().map_err(|_| err(format!("bad user {u:?}")))?,
                                i.parse::<u32>().map_err(|_| err(format!("bad item {i:?}")))?,
                                Behavior::from_token(b)
                                    .ok_or_else(|| err(format!("unknown behavior {b:?}")))?,
                            ),
                            _ => return Err(err("event needs USER ITEM BEHAVIOR".into())),
                        };
                        server.ingest(user, item, behavior).map_err(&mut err)?;
                    }
                    "swap" => {
                        let path =
                            tokens.get(1).ok_or_else(|| err("swap needs a checkpoint".into()))?;
                        let epoch = server.swap_engine(build_engine(path)?);
                        eprintln!("serve: swapped to {path} (epoch {epoch})");
                    }
                    "mark" => {
                        mbssl::tensor::alloc::reset_stats();
                        marked = true;
                        eprintln!("serve: mark — steady-state window opened");
                    }
                    "stats" => print_stats(&server.stats()),
                    "metrics" => {
                        // `metrics [json|prom] [PATH]` — snapshot to PATH
                        // (atomic) or to stderr; stdout stays reserved for
                        // `rec` replies so replays remain byte-diffable.
                        let fmt = tokens.get(1).copied().unwrap_or("json");
                        let snap = server.metrics_snapshot();
                        let body = match fmt {
                            "json" => snap.to_json(),
                            "prom" => snap.to_prometheus(),
                            other => {
                                return Err(err(format!(
                                    "unknown metrics format {other:?} (want json|prom)"
                                )))
                            }
                        };
                        match tokens.get(2) {
                            Some(path) => {
                                write_snapshot_atomic(std::path::Path::new(path), &body)
                                    .map_err(&mut err)?;
                                eprintln!("serve: metrics ({fmt}) -> {path}");
                            }
                            None => eprintln!("{body}"),
                        }
                    }
                    "quit" => break,
                    other => return Err(err(format!("unknown serve command {other:?}"))),
                }
            }
            flush_wave(&mut wave)?;
            Ok(marked)
        };
        let result = protocol_loop();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        result
    })?;

    let stats = server.shutdown();
    print_stats(&stats);
    if marked {
        eprintln!(
            "serve: steady-state alloc misses: {}",
            mbssl::tensor::alloc::stats().misses
        );
    }
    eprintln!("serve: clean shutdown");
    Ok(())
}

fn run() -> Result<(), String> {
    let Some(args) = Args::parse() else {
        usage();
        return Err("no command given".into());
    };
    let seed: u64 = args.get_or("seed", "42").parse().map_err(|_| "bad --seed")?;
    if let Some(trace) = args.get("trace") {
        let mode = mbssl::tensor::telemetry::TraceMode::parse(trace)
            .map_err(|e| format!("bad --trace: {e}"))?;
        mbssl::tensor::telemetry::set_mode(mode);
    }

    let result = match args.command.as_str() {
        "stats" => {
            let (dataset, _) = load_dataset(&args)?;
            let stats = dataset.stats();
            println!("dataset: {}", stats.name);
            println!("  users        : {}", stats.users);
            println!("  items        : {}", stats.items);
            println!("  interactions : {}", stats.interactions);
            for (b, c) in &stats.per_behavior {
                println!("    {b:>9}: {c}");
            }
            println!("  avg seq len  : {:.2}", stats.avg_seq_len);
            println!("  density      : {:.5}", stats.density);
            println!("  pop. gini    : {:.3}", dataset.popularity_gini());
            Ok(())
        }
        "train" => {
            let (dataset, target) = load_dataset(&args)?;
            let out = args.require("model")?;
            let epochs: usize = args.get_or("epochs", "20").parse().map_err(|_| "bad --epochs")?;
            let split = leave_one_out(&dataset, &SplitConfig::default());
            let sampler = NegativeSampler::from_dataset(&dataset);
            let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
            let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
            println!(
                "training MBMISSL on {} users / {} items ({} train instances) …",
                dataset.num_users,
                dataset.num_items,
                split.train.len()
            );
            let trainer = Trainer::new(TrainConfig {
                epochs,
                patience: 4,
                verbose: true,
                seed,
                run_dir: args.get("run-dir").map(String::from),
                ..TrainConfig::default()
            });
            let report = trainer.fit(&model, &split, &sampler);
            println!(
                "done: {} epochs, best val NDCG@10 = {:.4}",
                report.epochs_run, report.best_val_ndcg10
            );
            model.save(out).map_err(|e| format!("saving {out}: {e}"))?;
            println!("model written to {out}");
            Ok(())
        }
        "evaluate" => {
            let (dataset, target) = load_dataset(&args)?;
            let ckpt = args.require("model")?;
            let split = leave_one_out(&dataset, &SplitConfig::default());
            let sampler = NegativeSampler::from_dataset(&dataset);
            let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
            let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
            model.load(ckpt).map_err(|e| format!("loading {ckpt}: {e}"))?;
            let candidates = EvalCandidates::build(&split.test, &sampler, 99, seed);
            eprintln!("{}", engine_banner());
            let metrics = evaluate(&model, &split.test, &candidates, 256).aggregate();
            println!("test metrics (1-vs-99): {}", metrics.summary());
            Ok(())
        }
        "recommend" => {
            let (dataset, target) = load_dataset(&args)?;
            let ckpt = args.require("model")?;
            let user: usize = args.require("user")?.parse().map_err(|_| "bad --user")?;
            let top: usize = args.get_or("top", "10").parse().map_err(|_| "bad --top")?;
            if user >= dataset.num_users {
                return Err(format!(
                    "user {user} out of range (dataset has {} users after k-core remapping)",
                    dataset.num_users
                ));
            }
            let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
            let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
            model.load(ckpt).map_err(|e| format!("loading {ckpt}: {e}"))?;
            let history = &dataset.sequences[user];
            let seen: HashSet<_> = history.items.iter().copied().collect();
            eprintln!("{}", engine_banner());
            // Two-stage retrieval: `--index PATH`, or `<model>.ivf` if one
            // sits next to the checkpoint. A missing/corrupt/mismatched
            // index degrades to exhaustive ranking with a warning rather
            // than failing the command.
            let index_path = args
                .get("index")
                .map(String::from)
                .or_else(|| {
                    let implied = format!("{ckpt}.ivf");
                    std::path::Path::new(&implied).exists().then_some(implied)
                });
            let engine = match index_path {
                Some(path) if mbssl::core::infer::enabled() && mbssl::core::ann::enabled() => {
                    let mut engine = InferenceModel::compile(&model);
                    match IvfIndex::load_from_file(&path).and_then(|ix| {
                        let (nlist, nprobe_src) = (ix.nlist(), mbssl::core::ann::default_nprobe(ix.nlist()));
                        engine.attach_index(ix).map(|()| (nlist, nprobe_src))
                    }) {
                        Ok((nlist, nprobe)) => {
                            eprintln!(
                                "two-stage retrieval via {path} (nlist={nlist}, nprobe={nprobe}; set MBSSL_ANN=off for exhaustive)"
                            );
                            Some(engine)
                        }
                        Err(e) => {
                            eprintln!("warning: ignoring index {path}: {e}; ranking exhaustively");
                            None
                        }
                    }
                }
                _ => None,
            };
            let recs = match &engine {
                Some(engine) => recommend_top_n(engine, history, dataset.num_items, top, &seen, 512),
                None => recommend_top_n(&model, history, dataset.num_items, top, &seen, 512),
            };
            println!(
                "top-{top} recommendations for user {user} ({} history events):",
                history.len()
            );
            for (rank, rec) in recs.iter().enumerate() {
                println!("  {:>2}. item {:>6}  score {:.4}", rank + 1, rec.item, rec.score);
            }
            Ok(())
        }
        "serve" => serve_command(&args, seed),
        "synth" => {
            use mbssl::data::synthetic::SyntheticConfig;
            let out = args.require("out")?;
            let scale: f64 = args.get_or("scale", "0.05").parse().map_err(|_| "bad --scale")?;
            let preset = args.get_or("preset", "taobao");
            let config = match preset {
                "taobao" => SyntheticConfig::taobao_like(seed).scaled(scale),
                "yelp" => SyntheticConfig::yelp_like(seed).scaled(scale),
                "tmall" => SyntheticConfig::tmall_like(seed).scaled(scale),
                "scale-10k" => SyntheticConfig::scale_regime(10_000, seed),
                "scale-100k" => SyntheticConfig::scale_regime(100_000, seed),
                "scale-1m" => SyntheticConfig::scale_regime(1_000_000, seed),
                "scale" => {
                    let users: usize =
                        args.require("users")?.parse().map_err(|_| "bad --users")?;
                    if users < 1000 {
                        return Err(format!(
                            "--users {users}: the scale regime starts at 1000 users \
                             (use --preset taobao --scale <f> for small logs)"
                        ));
                    }
                    SyntheticConfig::scale_regime(users, seed)
                }
                other => {
                    return Err(format!(
                        "unknown --preset {other:?} (expected taobao | yelp | tmall | \
                         scale-10k | scale-100k | scale-1m | scale)"
                    ))
                }
            };
            let started = std::time::Instant::now();
            if out.ends_with(".mbds") {
                // .mbds files are preprocessed by convention, so route the
                // streamed events through the streaming converter (the TSV
                // is emitted user-sorted, so the single-pass path applies).
                // The pid keeps concurrent synths to the same output from
                // interleaving into one temp file; it lives in the
                // extension (after the last dot) so `file_stem`, and hence
                // the dataset name stored in the header, stays clean
                // ("x" for x.mbds).
                let tmp = format!(
                    "{}.part-{}",
                    out.strip_suffix(".mbds").unwrap_or(out),
                    std::process::id()
                );
                let (users, events) = write_synth_tsv(&config, &tmp)?;
                let k_user: usize =
                    args.get_or("k-user", "5").parse().map_err(|_| "bad --k-user")?;
                let k_item: usize =
                    args.get_or("k-item", "3").parse().map_err(|_| "bad --k-item")?;
                let report = convert_tsv_streaming(
                    std::path::Path::new(&tmp),
                    std::path::Path::new(out),
                    config.target_behavior,
                    k_user,
                    k_item,
                )
                .map_err(|e| format!("converting {tmp}: {e}"))?;
                std::fs::remove_file(&tmp).ok();
                let secs = started.elapsed().as_secs_f64();
                println!(
                    "wrote {out}: {} users / {} items / {} events after {k_user}/{k_item}-core \
                     (generated {users} users / {events} events, preset {preset}), \
                     {} bytes in {secs:.1}s ({:.0} events/s)",
                    report.users_out,
                    report.items_out,
                    report.events_out,
                    report.bytes_written,
                    events as f64 / secs,
                );
            } else {
                let (users, events) = write_synth_tsv(&config, out)?;
                let secs = started.elapsed().as_secs_f64();
                println!(
                    "wrote {out} ({users} users, {} items, {events} events, preset {preset}), \
                     in {secs:.1}s ({:.0} events/s)",
                    config.num_items,
                    events as f64 / secs,
                );
            }
            Ok(())
        }
        "convert" => {
            let path = args.require("data")?.to_string();
            let target = Behavior::from_token(args.require("target")?)
                .ok_or_else(|| "unknown --target behavior".to_string())?;
            let out = args
                .get("out")
                .map(String::from)
                .unwrap_or_else(|| format!("{path}.mbds"));
            let k_user: usize = args.get_or("k-user", "5").parse().map_err(|_| "bad --k-user")?;
            let k_item: usize = args.get_or("k-item", "3").parse().map_err(|_| "bad --k-item")?;
            let started = std::time::Instant::now();
            let report = match convert_tsv_streaming(
                std::path::Path::new(&path),
                std::path::Path::new(&out),
                target,
                k_user,
                k_item,
            ) {
                Ok(report) => report,
                Err(ConvertError::NotSorted { line, message }) => {
                    eprintln!(
                        "warning: {path} is not user-sorted (line {line}: {message}); \
                         falling back to in-memory conversion"
                    );
                    convert_tsv_in_memory(
                        std::path::Path::new(&path),
                        std::path::Path::new(&out),
                        target,
                        k_user,
                        k_item,
                    )
                    .map_err(|e| format!("converting {path}: {e}"))?
                }
                Err(e) => return Err(format!("converting {path}: {e}")),
            };
            let secs = started.elapsed().as_secs_f64();
            println!(
                "wrote {out}: {} users / {} items / {} events after {k_user}/{k_item}-core \
                 (raw log: {} users / {} items / {} events)",
                report.users_out,
                report.items_out,
                report.events_out,
                report.users_in,
                report.items_in,
                report.events_in,
            );
            println!(
                "  {} bytes, {} passes over the TSV, {secs:.1}s ({:.0} events/s ingest)",
                report.bytes_written,
                report.passes,
                report.events_in as f64 / secs,
            );
            Ok(())
        }
        "dataset" => match args.positional(0, "dataset subcommand")? {
            "stats" => {
                let path = args.positional(1, "dataset file")?;
                let started = std::time::Instant::now();
                if path.ends_with(".mbds") {
                    let file = MbdsFile::open(std::path::Path::new(path))
                        .map_err(|e| format!("loading {path}: {e}"))?;
                    let load_ms = started.elapsed().as_secs_f64() * 1e3;
                    let stats = file.stats();
                    println!("dataset {path} (.mbds v{}):", mbssl::data::format::VERSION);
                    println!(
                        "  backing      : {} ({} bytes)",
                        if file.is_mmap() { "mmap" } else { "buffered read" },
                        file.file_len()
                    );
                    println!("  name         : {}", stats.name);
                    println!("  users        : {}", stats.users);
                    println!("  items        : {}", stats.items);
                    println!("  interactions : {}", stats.interactions);
                    for (b, c) in &stats.per_behavior {
                        println!("    {b:>9}: {c}");
                    }
                    println!("  target       : {}", file.target_behavior().token());
                    println!("  avg seq len  : {:.2}", stats.avg_seq_len);
                    println!("  density      : {:.5}", stats.density);
                    println!("  pop. gini    : {:.3}", file.popularity_gini());
                    println!("  open+validate: {load_ms:.1} ms");
                } else {
                    let target = Behavior::from_token(args.require("target")?)
                        .ok_or_else(|| "unknown --target behavior".to_string())?;
                    let raw = load_tsv(path, target).map_err(|e| format!("loading {path}: {e}"))?;
                    let dataset = k_core(&raw, 5, 3);
                    let load_ms = started.elapsed().as_secs_f64() * 1e3;
                    let stats = dataset.stats();
                    println!("dataset {path} (TSV + 5/3-core):");
                    println!("  users        : {}", stats.users);
                    println!("  items        : {}", stats.items);
                    println!("  interactions : {}", stats.interactions);
                    for (b, c) in &stats.per_behavior {
                        println!("    {b:>9}: {c}");
                    }
                    println!("  avg seq len  : {:.2}", stats.avg_seq_len);
                    println!("  density      : {:.5}", stats.density);
                    println!("  pop. gini    : {:.3}", dataset.popularity_gini());
                    println!("  parse+core   : {load_ms:.1} ms");
                }
                Ok(())
            }
            other => {
                usage();
                Err(format!("unknown dataset subcommand {other:?}"))
            }
        },
        "index" => match args.positional(0, "index subcommand")? {
            "build" => {
                let (dataset, target) = load_dataset(&args)?;
                let ckpt = args.require("model")?;
                let out = args
                    .get("out")
                    .map(String::from)
                    .unwrap_or_else(|| format!("{ckpt}.ivf"));
                let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
                let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
                model.load(ckpt).map_err(|e| format!("loading {ckpt}: {e}"))?;
                let engine = InferenceModel::compile(&model);
                let nlist = match args.get("nlist") {
                    Some(v) => v.parse().map_err(|_| "bad --nlist")?,
                    None => mbssl::core::ann::default_nlist(dataset.num_items),
                };
                let started = std::time::Instant::now();
                let index = engine.build_index_with(nlist, seed);
                let build_ms = started.elapsed().as_secs_f64() * 1e3;
                index
                    .save_to_file(&out)
                    .map_err(|e| format!("writing {out}: {e}"))?;
                let stats = index.stats();
                println!(
                    "index written to {out}: {} items in {} lists ({} empty), built in {build_ms:.1} ms",
                    index.num_items(),
                    stats.lists,
                    stats.empty_lists
                );
                println!(
                    "  list sizes: min {} / mean {:.1} / max {} (imbalance {:.2}), {} bytes on disk",
                    stats.min_len, stats.mean_len, stats.max_len, stats.imbalance, stats.bytes
                );
                Ok(())
            }
            "stats" => {
                let path = args.positional(1, "index file")?;
                let index =
                    IvfIndex::load_from_file(path).map_err(|e| format!("loading {path}: {e}"))?;
                let stats = index.stats();
                println!("index {path}:");
                println!("  items        : {}", index.num_items());
                println!("  dim          : {}", index.dim());
                println!("  nlist        : {}", stats.lists);
                println!("  empty lists  : {}", stats.empty_lists);
                println!(
                    "  list sizes   : min {} / mean {:.1} / max {}",
                    stats.min_len, stats.mean_len, stats.max_len
                );
                println!("  imbalance    : {:.2}", stats.imbalance);
                println!("  bytes        : {}", stats.bytes);
                println!("  kmeans seed  : {}", index.seed());
                println!(
                    "  default probe: {} lists/interest",
                    mbssl::core::ann::default_nprobe(stats.lists)
                );
                Ok(())
            }
            other => {
                usage();
                Err(format!("unknown index subcommand {other:?}"))
            }
        },
        "trace" => match args.positional(0, "trace subcommand")? {
            "summary" => {
                let path = args.positional(1, "trace JSONL file")?;
                let trace = Trace::parse_file(path, args.get("section"))?;
                print!("{}", render_summary(&trace));
                if let Some(out) = args.get("collapsed") {
                    std::fs::write(out, collapsed_stacks(&trace))
                        .map_err(|e| format!("writing {out}: {e}"))?;
                    eprintln!("collapsed stacks written to {out}");
                }
                Ok(())
            }
            "diff" => {
                let base_path = args.positional(1, "base trace JSONL file")?;
                let new_path = args.positional(2, "new trace JSONL file")?;
                let section = args.get("section");
                let base = Trace::parse_file(base_path, section)?;
                let new = Trace::parse_file(new_path, section)?;
                let mut opts = DiffOptions::default();
                if let Some(tol) = args.get("tol") {
                    opts.tol_pct = tol.parse().map_err(|_| "bad --tol")?;
                }
                if let Some(metric) = args.get("metric") {
                    opts.metric = DiffMetric::parse(metric)?;
                }
                if let Some(floor) = args.get("min-share") {
                    opts.min_share_pct = floor.parse().map_err(|_| "bad --min-share")?;
                }
                let report = diff(&base, &new, &opts);
                print!("{}", render_diff(&report));
                if report.regressions > 0 {
                    Err(format!(
                        "{} span(s) regressed beyond {}% tolerance",
                        report.regressions, report.tol_pct
                    ))
                } else {
                    Ok(())
                }
            }
            other => {
                usage();
                Err(format!("unknown trace subcommand {other:?}"))
            }
        },
        "top" => {
            let path = args.positional(0, "metrics snapshot file")?;
            let interval: u64 = args
                .get_or("interval", "1000")
                .parse()
                .map_err(|_| "bad --interval")?;
            let frames: Option<u64> = match args.get("frames") {
                Some(v) => Some(v.parse().map_err(|_| "bad --frames")?),
                None => None,
            };
            let opts = mbssl::top::TopOptions {
                interval: std::time::Duration::from_millis(interval.max(1)),
                frames,
                clear: args.get("no-clear").is_none(),
            };
            mbssl::top::run(path, &opts)
        }
        "report" => {
            if args.positionals.is_empty() {
                usage();
                return Err("report needs at least one RUN_DIR".into());
            }
            let mut runs = Vec::new();
            for dir in &args.positionals {
                runs.push(mbssl::core::read_run_dir(std::path::Path::new(dir))?);
            }
            print!("{}", mbssl::core::render_report(&runs));
            Ok(())
        }
        other => {
            usage();
            Err(format!("unknown command {other:?}"))
        }
    };
    // Emit whatever telemetry the run accumulated (no-op when tracing is
    // off), with the command name as the trace section.
    mbssl::tensor::telemetry::flush_section(&args.command);
    result
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
