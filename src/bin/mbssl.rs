//! `mbssl` command-line interface: train, evaluate, and serve
//! recommendations on your own TSV interaction logs.
//!
//! ```text
//! mbssl train     --data log.tsv --target favorite --model out.ckpt [--epochs N] [--dim D] [--interests K]
//! mbssl evaluate  --data log.tsv --target favorite --model out.ckpt
//! mbssl recommend --data log.tsv --target favorite --model out.ckpt --user 42 --top 10
//! mbssl stats     --data log.tsv --target favorite
//! ```
//!
//! TSV format: `user \t item \t behavior \t timestamp` with behaviors in
//! {click, cart, favorite, purchase}; a header line is allowed.
//!
//! Every command accepts `--trace MODE` (`off`, `summary`, or
//! `jsonl:<path>`), equivalent to setting `MBSSL_TRACE`: `summary` prints a
//! span table to stderr on exit, `jsonl:<path>` appends machine-readable
//! trace records to `<path>`.

use std::collections::HashSet;
use std::process::ExitCode;

use mbssl::core::{
    evaluate, recommend_top_n, BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, Trainer,
};
use mbssl::data::io::load_tsv;
use mbssl::data::preprocess::{k_core, leave_one_out, SplitConfig};
use mbssl::data::sampler::{EvalCandidates, NegativeSampler};
use mbssl::data::{Behavior, Dataset};

struct Args {
    command: String,
    values: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut argv = std::env::args().skip(1);
        let command = argv.next()?;
        let mut values = Vec::new();
        let mut key: Option<String> = None;
        for arg in argv {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some(k) = key.take() {
                    values.push((k, "true".to_string()));
                }
                key = Some(stripped.to_string());
            } else if let Some(k) = key.take() {
                values.push((k, arg));
            } else {
                eprintln!("unexpected positional argument {arg:?}");
                return None;
            }
        }
        if let Some(k) = key.take() {
            values.push((k, "true".to_string()));
        }
        Some(Args { command, values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
}

fn usage() {
    eprintln!(
        "usage:\n  \
         mbssl train     --data LOG.tsv --target BEHAVIOR --model OUT.ckpt \
[--epochs N] [--dim D] [--interests K] [--seed S]\n  \
         mbssl evaluate  --data LOG.tsv --target BEHAVIOR --model IN.ckpt\n  \
         mbssl recommend --data LOG.tsv --target BEHAVIOR --model IN.ckpt --user U [--top N]\n  \
         mbssl stats     --data LOG.tsv --target BEHAVIOR\n\n\
         BEHAVIOR ∈ {{click, cart, favorite, purchase}}\n\
         all commands accept --trace off|summary|jsonl:PATH (telemetry; see also MBSSL_TRACE)"
    );
}

fn load_dataset(args: &Args) -> Result<(Dataset, Behavior), String> {
    let path = args.require("data")?;
    let target = Behavior::from_token(args.require("target")?)
        .ok_or_else(|| "unknown --target behavior".to_string())?;
    let raw = load_tsv(path, target).map_err(|e| format!("loading {path}: {e}"))?;
    let dataset = k_core(&raw, 5, 3);
    if dataset.num_users == 0 {
        return Err("no users survive 5/3-core filtering".into());
    }
    Ok((dataset, target))
}

fn model_config(args: &Args, seed: u64) -> ModelConfig {
    ModelConfig {
        dim: args.get_or("dim", "32").parse().expect("--dim must be an integer"),
        heads: 2,
        num_layers: 1,
        ffn_hidden: 2 * args.get_or("dim", "32").parse::<usize>().unwrap(),
        num_interests: args
            .get_or("interests", "4")
            .parse()
            .expect("--interests must be an integer"),
        extractor_hidden: args.get_or("dim", "32").parse().unwrap(),
        seed,
        ..ModelConfig::default()
    }
}

fn run() -> Result<(), String> {
    let Some(args) = Args::parse() else {
        usage();
        return Err("no command given".into());
    };
    let seed: u64 = args.get_or("seed", "42").parse().map_err(|_| "bad --seed")?;
    if let Some(trace) = args.get("trace") {
        let mode = mbssl::tensor::telemetry::TraceMode::parse(trace)
            .map_err(|e| format!("bad --trace: {e}"))?;
        mbssl::tensor::telemetry::set_mode(mode);
    }

    let result = match args.command.as_str() {
        "stats" => {
            let (dataset, _) = load_dataset(&args)?;
            let stats = dataset.stats();
            println!("dataset: {}", stats.name);
            println!("  users        : {}", stats.users);
            println!("  items        : {}", stats.items);
            println!("  interactions : {}", stats.interactions);
            for (b, c) in &stats.per_behavior {
                println!("    {b:>9}: {c}");
            }
            println!("  avg seq len  : {:.2}", stats.avg_seq_len);
            println!("  density      : {:.5}", stats.density);
            println!("  pop. gini    : {:.3}", dataset.popularity_gini());
            Ok(())
        }
        "train" => {
            let (dataset, target) = load_dataset(&args)?;
            let out = args.require("model")?;
            let epochs: usize = args.get_or("epochs", "20").parse().map_err(|_| "bad --epochs")?;
            let split = leave_one_out(&dataset, &SplitConfig::default());
            let sampler = NegativeSampler::from_dataset(&dataset);
            let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
            let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
            println!(
                "training MBMISSL on {} users / {} items ({} train instances) …",
                dataset.num_users,
                dataset.num_items,
                split.train.len()
            );
            let trainer = Trainer::new(TrainConfig {
                epochs,
                patience: 4,
                verbose: true,
                seed,
                ..TrainConfig::default()
            });
            let report = trainer.fit(&model, &split, &sampler);
            println!(
                "done: {} epochs, best val NDCG@10 = {:.4}",
                report.epochs_run, report.best_val_ndcg10
            );
            model.save(out).map_err(|e| format!("saving {out}: {e}"))?;
            println!("model written to {out}");
            Ok(())
        }
        "evaluate" => {
            let (dataset, target) = load_dataset(&args)?;
            let ckpt = args.require("model")?;
            let split = leave_one_out(&dataset, &SplitConfig::default());
            let sampler = NegativeSampler::from_dataset(&dataset);
            let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
            let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
            model.load(ckpt).map_err(|e| format!("loading {ckpt}: {e}"))?;
            let candidates = EvalCandidates::build(&split.test, &sampler, 99, seed);
            let metrics = evaluate(&model, &split.test, &candidates, 256).aggregate();
            println!("test metrics (1-vs-99): {}", metrics.summary());
            Ok(())
        }
        "recommend" => {
            let (dataset, target) = load_dataset(&args)?;
            let ckpt = args.require("model")?;
            let user: usize = args.require("user")?.parse().map_err(|_| "bad --user")?;
            let top: usize = args.get_or("top", "10").parse().map_err(|_| "bad --top")?;
            if user >= dataset.num_users {
                return Err(format!(
                    "user {user} out of range (dataset has {} users after k-core remapping)",
                    dataset.num_users
                ));
            }
            let schema = BehaviorSchema::new(dataset.behaviors.clone(), target);
            let model = Mbmissl::new(dataset.num_items, schema, model_config(&args, seed));
            model.load(ckpt).map_err(|e| format!("loading {ckpt}: {e}"))?;
            let history = &dataset.sequences[user];
            let seen: HashSet<_> = history.items.iter().copied().collect();
            let recs = recommend_top_n(&model, history, dataset.num_items, top, &seen, 512);
            println!(
                "top-{top} recommendations for user {user} ({} history events):",
                history.len()
            );
            for (rank, rec) in recs.iter().enumerate() {
                println!("  {:>2}. item {:>6}  score {:.4}", rank + 1, rec.item, rec.score);
            }
            Ok(())
        }
        other => {
            usage();
            Err(format!("unknown command {other:?}"))
        }
    };
    // Emit whatever telemetry the run accumulated (no-op when tracing is
    // off), with the command name as the trace section.
    mbssl::tensor::telemetry::flush_section(&args.command);
    result
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
