#!/usr/bin/env python3
"""Appends the committed-run summary to EXPERIMENTS.md from results/*.json.

Usage: python3 scripts/summarize_results.py [results_dir] [experiments_md]
Idempotent-ish: truncates everything after the COMMITTED RESULTS marker
before re-appending.
"""
import json
import os
import sys

RESULTS = sys.argv[1] if len(sys.argv) > 1 else "results"
EXP_MD = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
MARKER = "<!-- committed-results:auto -->"


def load(name):
    path = os.path.join(RESULTS, name + ".json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def fmt_metrics(m):
    return (
        f"{m['hr5']:.4f} | {m['hr10']:.4f} | {m['ndcg5']:.4f} | "
        f"{m['ndcg10']:.4f} | {m['mrr']:.4f}"
    )


def section_table1(out):
    data = load("table1_datasets")
    if not data:
        return
    out.append("### Table 1 — dataset statistics (measured)\n")
    out.append("| dataset | users | items | interactions | avg len | density |")
    out.append("|---|---|---|---|---|---|")
    for s in data:
        out.append(
            f"| {s['name']} | {s['users']} | {s['items']} | {s['interactions']} "
            f"| {s['avg_seq_len']:.1f} | {s['density']:.4f} |"
        )
    out.append("")


def section_table2(out):
    data = load("table2_overall")
    if not data:
        return
    for block in data:
        out.append(f"### Table 2 — {block['dataset']} (measured)\n")
        out.append("| model | HR@5 | HR@10 | NDCG@5 | NDCG@10 | MRR |")
        out.append("|---|---|---|---|---|---|")
        for r in block["rows"]:
            bold = "**" if r["model"] == "MBMISSL" else ""
            out.append(f"| {bold}{r['model']}{bold} | {fmt_metrics(r['metrics'])} |")
        sig = block.get("significance")
        if sig:
            verdict = "significant at 0.01" if sig["significant_at_001"] else "not significant"
            out.append(
                f"\nTable 3: MBMISSL vs {sig['best_baseline']} on per-user "
                f"{sig['metric']}: t = {sig['t']:.2f}, p = {sig['p_value']:.2e} ({verdict})."
            )
        out.append("")


def section_ablation(out):
    data = load("fig3_ablation")
    if not data:
        return
    for block in data:
        out.append(f"### Figure 3 — ablation, {block['dataset']} (measured)\n")
        out.append("| variant | HR@10 | NDCG@10 |")
        out.append("|---|---|---|")
        for r in block["rows"]:
            out.append(
                f"| {r['model']} | {r['metrics']['hr10']:.4f} | {r['metrics']['ndcg10']:.4f} |"
            )
        out.append("")


def section_sweep(out, name, title, param_fmt=lambda r: r["label"]):
    data = load(name)
    if not data:
        return
    out.append(f"### {title} (measured)\n")
    out.append("| setting | HR@10 | NDCG@10 |")
    out.append("|---|---|---|")
    for p in data:
        m = p["result"]["metrics"]
        out.append(f"| {param_fmt(p)} | {m['hr10']:.4f} | {m['ndcg10']:.4f} |")
    out.append("")


def section_coldstart(out):
    data = load("fig6_coldstart")
    if not data:
        return
    out.append("### Figure 6 — cold start (measured, NDCG@10 by history length)\n")
    labels = [g["label"] for g in data[0]["groups"]]
    out.append("| model | " + " | ".join(labels) + " |")
    out.append("|" + "---|" * (len(labels) + 1))
    for block in data:
        cells = [f"{g['metrics']['ndcg10']:.4f}" for g in block["groups"]]
        out.append(f"| {block['model']} | " + " | ".join(cells) + " |")
    out.append("")


def section_behaviors(out):
    data = load("fig7_behaviors")
    if not data:
        return
    out.append(f"### Figure 7 — behavior contribution, {data['dataset']} (measured)\n")
    out.append("| history behaviors | HR@10 | NDCG@10 | test n |")
    out.append("|---|---|---|---|")
    for r in data["rows"]:
        m = r["metrics"]
        out.append(f"| {r['model']} | {m['hr10']:.4f} | {m['ndcg10']:.4f} | {m['count']} |")
    out.append("")


def section_efficiency(out):
    data = load("table5_efficiency")
    if not data:
        return
    out.append("### Table 5 — efficiency (measured, this machine)\n")
    out.append("| model | params | train ms/batch | infer ms/user |")
    out.append("|---|---|---|---|")
    for r in data:
        out.append(
            f"| {r['model']} | {r['params']} | {r['train_ms_per_batch']:.1f} "
            f"| {r['infer_ms_per_user']:.3f} |"
        )
    out.append("")


def section_convergence(out):
    data = load("fig8_convergence")
    if not data:
        return
    out.append("### Figure 8 — convergence (measured, val NDCG@10 by epoch)\n")
    for curve in data:
        pts = ", ".join(
            f"e{e}:{v:.3f}" for e, v in zip(curve["epochs"], curve["val_ndcg10"])
        )
        out.append(f"- **{curve['label']}**: {pts}")
    out.append("")


def section_noise(out):
    data = load("fig9_noise")
    if not data:
        return
    out.append("### Figure 9 — noise robustness (measured, NDCG@10)\n")
    noises = sorted({p["click_noise"] for p in data})
    models = []
    for p in data:
        if p["model"] not in models:
            models.append(p["model"])
    out.append("| model | " + " | ".join(f"noise={n}" for n in noises) + " |")
    out.append("|" + "---|" * (len(noises) + 1))
    for m in models:
        cells = []
        for n in noises:
            v = next((p["ndcg10"] for p in data if p["model"] == m and p["click_noise"] == n), None)
            cells.append(f"{v:.4f}" if v is not None else "—")
        out.append(f"| {m} | " + " | ".join(cells) + " |")
    out.append("")


def section_recovery(out):
    data = load("fig10_recovery")
    if not data:
        return
    out.append("### Figure 10 — interest recovery (measured)\n")
    out.append("| variant | purity | coverage | pairwise cos |")
    out.append("|---|---|---|---|")
    for r in data:
        out.append(
            f"| {r['variant']} | {r['mean_purity']:.3f} | {r['mean_coverage']:.3f} "
            f"| {r['mean_pairwise_cos']:.3f} |"
        )
    out.append("")


def main():
    out = [MARKER, ""]
    section_table1(out)
    section_table2(out)
    section_ablation(out)
    section_sweep(out, "fig4_interest_sweep", "Figure 4 — interest count K")
    section_sweep(out, "fig5_ssl_grid", "Figure 5 — SSL weight × temperature")
    section_coldstart(out)
    section_behaviors(out)
    section_efficiency(out)
    section_convergence(out)
    section_noise(out)
    section_sweep(out, "figx_window_sweep", "Extra — hypergraph window")
    section_sweep(out, "figx_aux_sweep", "Extra — auxiliary-loss weight")
    section_sweep(out, "figx_extractor", "Extra — extractor comparison")
    section_recovery(out)

    with open(EXP_MD) as f:
        text = f.read()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n\n"
    else:
        text = text.rstrip() + "\n\n"
    with open(EXP_MD, "w") as f:
        f.write(text + "\n".join(out) + "\n")
    print(f"appended {len(out)} lines to {EXP_MD}")


if __name__ == "__main__":
    main()
