#!/usr/bin/env bash
# Full local CI: the tier-1 gate plus the perf-sensitive test suites that
# guard the packed GEMM kernels, the recycling allocator, and the fused
# transformer-block ops.
#
# Stages:
#   1. tier-1 verify        — release build + workspace tests (the gate the
#                             roadmap promises stays green).
#   2. packed-GEMM proptests — bit-for-bit packed==naive, run under worker
#                             pool sizes 1, 2, and the machine default so the
#                             parallel row-split paths are all exercised. The
#                             serving-engine suite (micro-batched == sequential
#                             recommend_top_n, cache/hot-swap/budget gates)
#                             runs inside the same pool-size loop.
#   3. fused-op parity      — bit-for-bit fused==unfused forward + gradients
#                             (also per pool size; sdpa dispatches per slice).
#   4. allocation regression — counting-allocator budget test (also per pool
#                             size; the recycler is thread-local + shared).
#   5. escape hatches       — full workspace tests with MBSSL_FUSED=off, and
#                             the packed-GEMM suite with MBSSL_ALLOC=off.
#   6. inference engine     — infer-parity suite under the default engine-on
#                             path, under MBSSL_INFER=off (the autograd
#                             escape hatch must restore the old serving path
#                             exactly), under MBSSL_SIMD=off (scalar
#                             microkernels must not change a bit), and the
#                             quantized-catalog drift gates under
#                             MBSSL_QUANT=i8 and MBSSL_QUANT=bf16 (the
#                             exact-parity top-n test is skipped there: a
#                             quantized catalog is *supposed* to differ from
#                             the f32 reference within tol), and the
#                             two-stage retrieval suite (recall gate +
#                             serialization rejection + tie-break parity)
#                             under ambient ANN and MBSSL_ANN=off. The
#                             SIMD microkernel parity proptests also run
#                             inside the pool-size loop of stage 2.
#   7. traced tests         — full workspace tests with MBSSL_TRACE=jsonl:…
#                             so every suite also passes with live telemetry
#                             (determinism + near-zero-overhead contract).
#   8. trace workflow       — synth → traced 2-epoch training with a run
#                             ledger → `mbssl trace summary`, then
#                             `mbssl trace diff` against the committed
#                             BENCH_trace_baseline.jsonl on the share metric
#                             (tolerance MBSSL_BENCH_TOL_PCT share points,
#                             default 5; spans under 3% of wall never gate),
#                             an `mbssl report` smoke over two run dirs, and
#                             the index workflow: `mbssl index build` /
#                             `index stats` / two-stage `recommend`, with an
#                             MBSSL_ANN=off bit-parity diff against the
#                             pre-index exhaustive output. Then the serve
#                             smoke: a fixed replay served micro-batched
#                             (batch 16, cache on) must be byte-identical to
#                             the single-request run (batch 1, cache off) and
#                             to offline `recommend`, report zero allocator
#                             misses after the steady-state mark, and shut
#                             down cleanly; the replay's `metrics` snapshot
#                             must be schema-complete with every stage
#                             histogram covering every replied request and a
#                             parseable Prometheus exposition, and `mbssl
#                             top` must render a frame from it.
#   9. data substrate       — `mbssl convert` on the trace-workflow TSV,
#                             `dataset stats` agreement between the .mbds
#                             and TSV paths, then the bit-parity gate:
#                             training from the mmap'd .mbds sibling must
#                             produce a checkpoint byte-identical to the
#                             MBSSL_DATA_MMAP=off TSV-parsed run. Also a
#                             direct-to-.mbds `synth --preset scale` smoke.
#                             The shard_parity suite runs in the stage-2
#                             pool-size loop, and MBSSL_SHARD_EMB=off /
#                             MBSSL_DATA_MMAP=off escape hatches alongside
#                             stage 5.
#  10. rustdoc              — `cargo doc --no-deps` for the workspace crates
#                             with warnings promoted to errors (missing-docs
#                             regressions fail here).
#  11. bench smoke          — refreshes BENCH_throughput.json, appends one
#                             line to BENCH_history.jsonl, and fails if the
#                             bench harness itself breaks (numbers are
#                             machine-dependent; only the telemetry-off
#                             train_step overhead bound is asserted there).
#
# Usage: scripts/ci.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
[[ "${1:-}" == "--skip-bench" ]] && skip_bench=1

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace tests"
cargo test --workspace -q

for threads in 1 2 ""; do
    label="${threads:-default}"
    echo "==> packed GEMM proptests (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test packed_gemm -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test packed_gemm -q
    fi

    echo "==> fused-op parity proptests (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test fused_parity -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test fused_parity -q
    fi

    echo "==> allocation-regression test (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test alloc_budget -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test alloc_budget -q
    fi

    echo "==> SIMD microkernel parity proptests (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test simd_parity -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test simd_parity -q
    fi

    echo "==> serving-engine parity (batched == sequential, MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-core --test serve -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-core --test serve -q
    fi

    echo "==> sharded embedding-gradient parity (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test shard_parity -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test shard_parity -q
    fi
done

echo "==> fusion escape hatch (MBSSL_FUSED=off, full workspace)"
MBSSL_FUSED=off cargo test --workspace -q

echo "==> allocator escape hatch (MBSSL_ALLOC=off)"
MBSSL_ALLOC=off cargo test --release -p mbssl-tensor --test packed_gemm -q

echo "==> sharded-embedding escape hatch (MBSSL_SHARD_EMB=off pins the sequential scatter)"
MBSSL_SHARD_EMB=off cargo test --release -p mbssl-tensor --test shard_parity -q

echo "==> mmap escape hatch (MBSSL_DATA_MMAP=off, buffered .mbds reads)"
MBSSL_DATA_MMAP=off cargo test --release -p mbssl-data --test format -q

echo "==> inference-engine parity (engine on, ambient SIMD)"
cargo test --release -p mbssl-core --test infer_parity -q

echo "==> inference escape hatch (MBSSL_INFER=off restores the autograd path)"
MBSSL_INFER=off cargo test --release -p mbssl-core --test infer_parity -q

echo "==> SIMD escape hatch (MBSSL_SIMD=off, scalar microkernels)"
MBSSL_SIMD=off cargo test --release -p mbssl-tensor --test simd_parity -q
MBSSL_SIMD=off cargo test --release -p mbssl-core --test infer_parity -q

# The exact-parity top-n test is skipped under ambient i8/bf16: a quantized
# catalog intentionally reorders near-ties; the drift gate below bounds it.
echo "==> quantized catalog drift gate (MBSSL_QUANT=i8)"
MBSSL_QUANT=i8 cargo test --release -p mbssl-core --test infer_parity -q \
    -- --skip engine_top_n_matches_chunked_reference_exactly

echo "==> quantized catalog drift gate (MBSSL_QUANT=bf16)"
MBSSL_QUANT=bf16 cargo test --release -p mbssl-core --test infer_parity -q \
    -- --skip engine_top_n_matches_chunked_reference_exactly

echo "==> two-stage retrieval (IVF index + rerank, ambient ANN)"
cargo test --release -p mbssl-core --test ann -q

echo "==> ANN escape hatch (MBSSL_ANN=off restores exhaustive ranking)"
MBSSL_ANN=off cargo test --release -p mbssl-core --test ann -q

trace_file=$(mktemp -t mbssl_ci_trace.XXXXXX.jsonl)
trace_dir=$(mktemp -d -t mbssl_ci_tracewf.XXXXXX)
trap 'rm -rf "$trace_file" "$trace_dir"' EXIT
echo "==> traced tests (MBSSL_TRACE=jsonl:$trace_file, full workspace)"
MBSSL_TRACE="jsonl:$trace_file" cargo test --workspace -q

echo "==> trace workflow (synth → traced train + ledger → trace summary/diff → report)"
mbssl=target/release/mbssl
"$mbssl" synth --out "$trace_dir/log.tsv" --scale 0.05 --seed 11
"$mbssl" train --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --epochs 2 --dim 16 --interests 2 \
    --trace "jsonl:$trace_dir/trace.jsonl" --run-dir "$trace_dir/run0"
"$mbssl" trace summary "$trace_dir/trace.jsonl" \
    --collapsed "$trace_dir/trace.folded" > /dev/null
# Share-of-wall regression gate against the committed baseline: machine-
# portable (compares where time goes, not absolute speed). Only spans that
# hold ≥3% of wall gate, with MBSSL_BENCH_TOL_PCT (default 5) share points
# of headroom for scheduler jitter.
"$mbssl" trace diff BENCH_trace_baseline.jsonl "$trace_dir/trace.jsonl" \
    --metric share --tol "${MBSSL_BENCH_TOL_PCT:-5}" --min-share 3
"$mbssl" train --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model2.ckpt" --epochs 2 --dim 16 --interests 2 \
    --run-dir "$trace_dir/run1"
"$mbssl" report "$trace_dir/run0" "$trace_dir/run1"

echo "==> index workflow (build → stats → two-stage recommend → ANN-off parity)"
# Exhaustive ranking of record, captured before any index exists.
"$mbssl" recommend --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2 --user 3 --top 5 \
    > "$trace_dir/recs_exhaustive.txt"
"$mbssl" index build --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2
"$mbssl" index stats "$trace_dir/model.ckpt.ivf"
# Two-stage smoke: the sibling .ivf is picked up automatically.
"$mbssl" recommend --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2 --user 3 --top 5 \
    > /dev/null
# Escape-hatch parity: with the index on disk but MBSSL_ANN=off, the
# output must be bit-for-bit the pre-index exhaustive ranking.
MBSSL_ANN=off "$mbssl" recommend --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2 --user 3 --top 5 \
    > "$trace_dir/recs_ann_off.txt"
diff "$trace_dir/recs_exhaustive.txt" "$trace_dir/recs_ann_off.txt"

echo "==> serve smoke (replay parity, offline cross-check, metrics snapshot, zero steady-state allocs, clean shutdown)"
# Fixed replay: a warmup wave, then `mark` opens the steady-state window
# and the identical wave repeats — by then every buffer the batch shapes
# need has been high-watered, so the size-class allocator must not miss.
# The trailing `metrics` commands snapshot the server state to files
# (stderr/files only, so stdout stays byte-diffable across configs).
cat > "$trace_dir/replay.txt" <<REPLAY
rec 3 5
rec 7 5
rec 11 5
mark
rec 3 5
rec 7 5
rec 11 5
metrics json $trace_dir/metrics.json
metrics prom $trace_dir/metrics.prom
quit
REPLAY
# Micro-batched run (cache on, the serving default; the sibling .ivf is
# picked up, so this also smokes two-stage retrieval under batching).
MBSSL_SERVE_BATCH=16 MBSSL_SERVE_WORKERS=1 "$mbssl" serve \
    --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2 \
    --replay "$trace_dir/replay.txt" \
    > "$trace_dir/serve_b16.txt" 2> "$trace_dir/serve_b16.err"
# Single-request run (no batching, no cache): stdout must be bit-identical.
MBSSL_SERVE_BATCH=1 MBSSL_SERVE_WORKERS=1 MBSSL_SERVE_CACHE=off "$mbssl" serve \
    --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2 \
    --replay "$trace_dir/replay.txt" \
    > "$trace_dir/serve_b1.txt" 2> /dev/null
diff "$trace_dir/serve_b16.txt" "$trace_dir/serve_b1.txt"
# Offline cross-check: the served item lines for user 3 must match what
# `mbssl recommend` prints for the same user, model, and index.
"$mbssl" recommend --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model.ckpt" --dim 16 --interests 2 --user 3 --top 5 \
    | tail -5 > "$trace_dir/offline_user3.txt"
head -6 "$trace_dir/serve_b16.txt" | tail -5 > "$trace_dir/served_user3.txt"
diff "$trace_dir/offline_user3.txt" "$trace_dir/served_user3.txt"
# Steady-state serving must not allocate (arena + size-class recycling),
# and the drain must be clean.
grep -q "steady-state alloc misses: 0" "$trace_dir/serve_b16.err"
grep -q "clean shutdown" "$trace_dir/serve_b16.err"
# Metrics snapshot validation (DESIGN.md §17): the replay issued
# `metrics json/prom`; the JSON snapshot must be schema-complete, every
# stage histogram must cover every replied request, and the Prometheus
# exposition must parse line-by-line.
python3 - "$trace_dir/metrics.json" "$trace_dir/metrics.prom" <<'PY'
import json, sys

snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "mbssl.serve.metrics/1", snap.get("schema")
for key in ["unix_time_ms", "uptime_ms", "epoch", "queue_depth", "sessions",
            "counters", "cache_hit_rate", "mean_batch", "ann_budget_us",
            "ann_ewma_us", "ann_degraded_now", "batch", "stages"]:
    assert key in snap, "snapshot missing %s" % key
for key in ["requests", "batches", "cache_hits", "cache_misses",
            "ann_degraded", "swaps", "tail_sampled"]:
    assert key in snap["counters"], "counters missing %s" % key
requests = snap["counters"]["requests"]
assert requests == 6, requests
stages = snap["stages"]
assert sorted(stages) == sorted(
    ["queue", "resolve", "forward", "rank", "rerank", "reply", "total"]
), sorted(stages)
for name, h in stages.items():
    for key in ["count", "sum", "min", "max", "p50", "p90", "p99", "buckets"]:
        assert key in h, "stage %s missing %s" % (name, key)
    assert h["count"] == requests, "stage %s covers %d/%d" % (name, h["count"], requests)
    assert sum(c for _, _, c in h["buckets"]) == h["count"], name
    assert h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"], name
assert sum(c for _, _, c in snap["batch"]["buckets"]) == snap["counters"]["batches"]
for line in open(sys.argv[2]):
    line = line.rstrip("\n")
    if not line or line.startswith("#"):
        continue
    metric, value = line.rsplit(" ", 1)
    assert metric, line
    float(value)
print("metrics snapshot OK: %d requests, %d stages" % (requests, len(stages)))
PY
# Dashboard smoke: one frame rendered from the snapshot file.
"$mbssl" top "$trace_dir/metrics.json" --frames 1 --no-clear | grep -q "^mbssl top"

echo "==> data substrate (convert → stats → TSV-vs-.mbds bit-identical training)"
# Convert the trace-workflow TSV and check the .mbds reports the same
# dataset shape the TSV pipeline computes.
"$mbssl" convert --data "$trace_dir/log.tsv" --target purchase
"$mbssl" dataset stats "$trace_dir/log.tsv.mbds" > "$trace_dir/stats_mbds.txt"
"$mbssl" dataset stats "$trace_dir/log.tsv" --target purchase > "$trace_dir/stats_tsv.txt"
# Identical counts from both paths (strip the format/backing/target/timing
# lines — only the .mbds header records a target).
grep -E "users|items|interactions|click|cart|favorite|avg|density|gini|purchase:" \
    "$trace_dir/stats_mbds.txt" | grep -vE "backing|target" > "$trace_dir/stats_mbds_core.txt"
grep -E "users|items|interactions|click|cart|favorite|avg|density|gini|purchase:" \
    "$trace_dir/stats_tsv.txt" > "$trace_dir/stats_tsv_core.txt"
diff "$trace_dir/stats_mbds_core.txt" "$trace_dir/stats_tsv_core.txt"
# Training from the mmap'd .mbds (sibling auto-discovery) must be
# bit-for-bit the TSV-parsed run: compare checkpoints, not logs (metrics
# files carry wall-clock timings).
MBSSL_DATA_MMAP=off "$mbssl" train --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model_tsv.ckpt" --epochs 1 --dim 16 --interests 2
"$mbssl" train --data "$trace_dir/log.tsv" --target purchase \
    --model "$trace_dir/model_mbds.ckpt" --epochs 1 --dim 16 --interests 2 \
    2> "$trace_dir/train_mbds.err"
grep -q "data: using $trace_dir/log.tsv.mbds" "$trace_dir/train_mbds.err"
cmp "$trace_dir/model_tsv.ckpt" "$trace_dir/model_mbds.ckpt"
# Direct-to-.mbds synthesis at the scale regime's smallest preset.
"$mbssl" synth --out "$trace_dir/scale.mbds" --preset scale --users 1000 --seed 5
"$mbssl" dataset stats "$trace_dir/scale.mbds" > /dev/null
"$mbssl" train --data "$trace_dir/scale.mbds" \
    --model "$trace_dir/model_scale.ckpt" --epochs 1 --dim 16 --interests 2

echo "==> rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "$skip_bench" -eq 0 ]]; then
    echo "==> bench smoke"
    scripts/bench_smoke.sh
else
    echo "==> bench smoke skipped (--skip-bench)"
fi

echo "CI OK"
