#!/usr/bin/env bash
# Full local CI: the tier-1 gate plus the perf-sensitive test suites that
# guard the packed GEMM kernels, the recycling allocator, and the fused
# transformer-block ops.
#
# Stages:
#   1. tier-1 verify        — release build + workspace tests (the gate the
#                             roadmap promises stays green).
#   2. packed-GEMM proptests — bit-for-bit packed==naive, run under worker
#                             pool sizes 1, 2, and the machine default so the
#                             parallel row-split paths are all exercised.
#   3. fused-op parity      — bit-for-bit fused==unfused forward + gradients
#                             (also per pool size; sdpa dispatches per slice).
#   4. allocation regression — counting-allocator budget test (also per pool
#                             size; the recycler is thread-local + shared).
#   5. escape hatches       — full workspace tests with MBSSL_FUSED=off, and
#                             the packed-GEMM suite with MBSSL_ALLOC=off.
#   6. traced tests         — full workspace tests with MBSSL_TRACE=jsonl:…
#                             so every suite also passes with live telemetry
#                             (determinism + near-zero-overhead contract).
#   7. rustdoc              — `cargo doc --no-deps` for the workspace crates
#                             with warnings promoted to errors (missing-docs
#                             regressions fail here).
#   8. bench smoke          — refreshes BENCH_throughput.json and fails if the
#                             bench harness itself breaks (numbers are
#                             machine-dependent; only the telemetry-off
#                             train_step overhead bound is asserted there).
#
# Usage: scripts/ci.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
[[ "${1:-}" == "--skip-bench" ]] && skip_bench=1

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace tests"
cargo test --workspace -q

for threads in 1 2 ""; do
    label="${threads:-default}"
    echo "==> packed GEMM proptests (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test packed_gemm -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test packed_gemm -q
    fi

    echo "==> fused-op parity proptests (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test fused_parity -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test fused_parity -q
    fi

    echo "==> allocation-regression test (MBSSL_THREADS=$label)"
    if [[ -n "$threads" ]]; then
        MBSSL_THREADS="$threads" cargo test --release -p mbssl-tensor --test alloc_budget -q
    else
        env -u MBSSL_THREADS cargo test --release -p mbssl-tensor --test alloc_budget -q
    fi
done

echo "==> fusion escape hatch (MBSSL_FUSED=off, full workspace)"
MBSSL_FUSED=off cargo test --workspace -q

echo "==> allocator escape hatch (MBSSL_ALLOC=off)"
MBSSL_ALLOC=off cargo test --release -p mbssl-tensor --test packed_gemm -q

trace_file=$(mktemp -t mbssl_ci_trace.XXXXXX.jsonl)
trap 'rm -f "$trace_file"' EXIT
echo "==> traced tests (MBSSL_TRACE=jsonl:$trace_file, full workspace)"
MBSSL_TRACE="jsonl:$trace_file" cargo test --workspace -q

echo "==> rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "$skip_bench" -eq 0 ]]; then
    echo "==> bench smoke"
    scripts/bench_smoke.sh
else
    echo "==> bench smoke skipped (--skip-bench)"
fi

echo "CI OK"
