#!/usr/bin/env bash
# Quick throughput smoke: runs the criterion throughput bench in quick mode
# and distills items/sec figures into BENCH_throughput.json at the repo root.
#
# Three passes:
#   1. the full suite with fusion at its ambient setting and telemetry OFF
#      (the numbers of record) — this includes the serving pair
#      `throughput_recommend_top_n` (inference engine, one-pass catalog
#      ranking) vs `throughput_recommend_graph` (pre-engine chunked path);
#      their ratio is distilled into the report's `recommend.speedup`, and
#      the dataset-load pair `dataset_load_tsv` / `dataset_load_mbds`
#      (events/sec over identical preprocessed data) plus the bare
#      `dataset_open_mbds` latency, distilled into the `data` section;
#   2. a `train_step`-only pass with MBSSL_FUSED=off so the report shows the
#      fused and unfused training step side by side;
#   3. a `train_step`-only pass with MBSSL_TRACE=summary so the report's
#      `telemetry` section carries the top spans by total time (and the span
#      table prints to stderr).
#
# The telemetry-off train_step throughput from pass 1 is additionally checked
# against the previously committed BENCH_throughput.json: a regression beyond
# MBSSL_BENCH_TOL_PCT (default 2%) fails the script, enforcing the
# "disabled-mode tracing is free" contract.
#
# A fourth pass runs `exp_serve` (16 closed-loop clients against the
# micro-batched serving engine); its per-phase QPS / p50 / p90 / p99,
# per-stage quantile breakdown, batch histogram, and the
# engine-vs-single-request speedup are embedded as the report's `serve`
# section. A fifth pass runs the observability overhead gate: interleaved
# (telemetry-off, MBSSL_TRACE=summary) exp_serve pairs, compared within
# each pair on the sequential phase; the best pair's instrumented QPS must
# stay within MBSSL_BENCH_TOL_PCT (default 5 for this gate) of its
# telemetry-off partner, enforcing that the serve stage histograms + span
# instrumentation stay cheap (DESIGN.md §17). Pairing adjacent runs cancels
# machine drift; gating the best pair means the gate only fails when every
# pair shows the regression — the signature of real overhead, not noise.
#
# On success, one summary line {git_rev, date, fused/unfused/traced train_step
# items/s, serve QPS + latency figures} is appended to the committed
# BENCH_history.jsonl, so throughput history accumulates across commits and
# stays greppable/plottable.
#
# Usage: scripts/bench_smoke.sh [extra cargo-bench args]
# Env:   MBSSL_THREADS       — forwarded to the worker pool (see DESIGN.md §Threading).
#        MBSSL_FUSED         — fused transformer kernels (see DESIGN.md §Fusion).
#        MBSSL_TRACE         — telemetry mode; forced per pass as described above.
#        MBSSL_BENCH_TOL_PCT — allowed train_step regression vs the committed
#                              report before this script fails (default 2).
#        MBSSL_BENCH_WARMUP  — discarded warmup passes of the full suite run
#                              before the measured passes, to stabilize CPU
#                              frequency and caches (default 1; 0 disables).
#        MBSSL_BENCH_SERVE_PAIRS — interleaved off/instrumented exp_serve
#                              pairs for the serve overhead gate (default 3).
set -euo pipefail
cd "$(dirname "$0")/.."

# Noise guard: warm the build, CPU governor, and page cache with discarded
# passes before anything is measured. The warmup count and the host load
# average land in the report's meta block so outliers can be diagnosed.
export MBSSL_BENCH_WARMUP="${MBSSL_BENCH_WARMUP:-1}"
for ((i = 0; i < MBSSL_BENCH_WARMUP; i++)); do
    echo "warmup pass $((i + 1))/$MBSSL_BENCH_WARMUP (discarded)" >&2
    CRITERION_QUICK=1 MBSSL_TRACE=off \
        cargo bench -p mbssl-bench --bench throughput "$@" > /dev/null 2>&1
done

raw=$(mktemp)
raw_unfused=$(mktemp)
raw_traced=$(mktemp)
prev_report=$(mktemp)
trap 'rm -f "$raw" "$raw_unfused" "$raw_traced" "$prev_report"' EXIT

# Keep the previous report for the overhead check: the python heredoc's
# stdout redirect truncates BENCH_throughput.json before python runs.
if [[ -f BENCH_throughput.json ]]; then
    cp BENCH_throughput.json "$prev_report"
else
    : > "$prev_report"
fi

CRITERION_QUICK=1 CRITERION_JSON="$raw" MBSSL_TRACE=off \
    cargo bench -p mbssl-bench --bench throughput "$@"

CRITERION_QUICK=1 CRITERION_JSON="$raw_unfused" MBSSL_TRACE=off \
    MBSSL_FUSED=off MBSSL_BENCH_ONLY=train_step \
    cargo bench -p mbssl-bench --bench throughput "$@"

CRITERION_QUICK=1 CRITERION_JSON="$raw_traced" \
    MBSSL_TRACE=summary MBSSL_BENCH_ONLY=train_step \
    cargo bench -p mbssl-bench --bench throughput "$@"

# Serving load test (DESIGN.md §15): 16 closed-loop clients against the
# micro-batched request engine; QPS, p50/p99, batch histogram, and the
# engine-vs-single-request speedup land in the report's `serve` section.
serve_dir=$(mktemp -d)
trap 'rm -rf "$raw" "$raw_unfused" "$raw_traced" "$prev_report" "$serve_dir"' EXIT
echo "serve load test (exp_serve, 16 clients)" >&2
MBSSL_TRACE=off cargo run --release -q -p mbssl-bench --bin exp_serve -- \
    --quick --reqs 64 --out "$serve_dir" >&2
# Observability overhead gate (DESIGN.md §17): closed-loop serve QPS on a
# shared box drifts far more than instrumentation costs, so one
# off-vs-instrumented comparison flakes. Run interleaved pairs — telemetry
# off, then MBSSL_TRACE=summary, back to back so drift cancels within a
# pair — at a request count high enough (256/client) to dampen the
# batching/cache dynamics. The python below gates on the BEST pair: real
# overhead depresses the instrumented side of every pair, noise does not.
serve_pairs="${MBSSL_BENCH_SERVE_PAIRS:-3}"
for ((p = 1; p <= serve_pairs; p++)); do
    echo "serve overhead gate pair $p/$serve_pairs (off, then MBSSL_TRACE=summary)" >&2
    MBSSL_TRACE=off cargo run --release -q -p mbssl-bench --bin exp_serve -- \
        --quick --reqs 256 --out "$serve_dir/gate_off_$p" >&2
    MBSSL_TRACE=summary cargo run --release -q -p mbssl-bench --bin exp_serve -- \
        --quick --reqs 256 --out "$serve_dir/gate_on_$p" >&2
done

python3 - "$raw" "$raw_unfused" "$raw_traced" "$prev_report" "$serve_dir/serve.json" "$serve_dir" > BENCH_throughput.json <<'PY'
import datetime, glob, json, os, re, subprocess, sys

def load(path):
    rows, allocator, telemetry = [], {}, {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec["name"] == "alloc_stats":
                section = rec.get("section", "all")
                allocator[section] = {
                    k: v for k, v in rec.items() if k not in ("name", "section")
                }
                continue
            if rec["name"] == "telemetry":
                telemetry.setdefault(rec.get("section", "all"), []).append(
                    {k: v for k, v in rec.items() if k not in ("name", "section")}
                )
                continue
            m = re.search(r"items(\d+)$", rec["name"])
            items = int(m.group(1)) if m else 1
            rows.append({
                "name": rec["name"],
                "ns_per_iter": rec["ns_per_iter"],
                "items_per_iter": items,
                "items_per_sec": round(rec["iters_per_sec"] * items, 1),
            })
    return rows, allocator, telemetry

rows, allocator, _ = load(sys.argv[1])
unfused_rows, _, _ = load(sys.argv[2])
traced_rows, _, traced_telemetry = load(sys.argv[3])

git_rev = subprocess.run(
    ["git", "rev-parse", "HEAD"], capture_output=True, text=True
).stdout.strip() or None

try:
    loadavg = [round(v, 2) for v in os.getloadavg()]
except OSError:
    loadavg = None

meta = {
    "git_rev": git_rev,
    "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "cores": os.cpu_count(),
    "loadavg": loadavg,
    "warmup_passes": int(os.environ.get("MBSSL_BENCH_WARMUP", "0") or 0),
    "MBSSL_THREADS": os.environ.get("MBSSL_THREADS", ""),
    "MBSSL_ALLOC": os.environ.get("MBSSL_ALLOC", ""),
    "MBSSL_FUSED": os.environ.get("MBSSL_FUSED", ""),
}

report = {"unit": "items/sec", "meta": meta, "benchmarks": rows}
if unfused_rows:
    report["unfused"] = unfused_rows

# Serving speedup: the inference-engine catalog ranking vs the pre-engine
# chunked score_batch path, side by side with the ratio of record.
def items_per_sec(rows, sub):
    r = next((r for r in rows if sub in r["name"]), None)
    return r["items_per_sec"] if r else None

rec_engine = items_per_sec(rows, "recommend_top_n_items")
rec_graph = items_per_sec(rows, "recommend_graph")
if rec_engine and rec_graph:
    report["recommend"] = {
        "engine_items_per_sec": rec_engine,
        "graph_items_per_sec": rec_graph,
        "speedup": round(rec_engine / rec_graph, 2),
    }

# Two-stage retrieval (DESIGN.md §14): ANN vs exhaustive ranking on the
# regular and the 10x synthetic catalog, plus IVF index build time. The
# xl speedup is the figure of record for the retrieve-then-rerank path.
def ns_per_iter(rows, sub):
    r = next((r for r in rows if sub in r["name"]), None)
    return r["ns_per_iter"] if r else None

rec_ann = items_per_sec(rows, "recommend_ann_items")
rec_xl = items_per_sec(rows, "recommend_top_n_xl_items")
rec_ann_xl = items_per_sec(rows, "recommend_ann_xl_items")
build_2400 = ns_per_iter(rows, "index_build_catalog2400")
build_24000 = ns_per_iter(rows, "index_build_catalog24000")
two_stage = {}
if rec_engine and rec_ann:
    two_stage["catalog2400"] = {
        "exhaustive_items_per_sec": rec_engine,
        "ann_items_per_sec": rec_ann,
        "speedup": round(rec_ann / rec_engine, 2),
    }
if rec_xl and rec_ann_xl:
    two_stage["catalog24000"] = {
        "exhaustive_items_per_sec": rec_xl,
        "ann_items_per_sec": rec_ann_xl,
        "speedup": round(rec_ann_xl / rec_xl, 2),
    }
builds = {}
if build_2400:
    builds["catalog2400"] = round(build_2400 / 1e6, 2)
if build_24000:
    builds["catalog24000"] = round(build_24000 / 1e6, 2)
if builds:
    two_stage["index_build_ms"] = builds
if two_stage:
    report["two_stage"] = two_stage

# Data substrate (DESIGN.md §16): TSV parse+k-core vs mmap'd .mbds
# open+materialize, in events/sec over identical preprocessed data, plus
# the bare .mbds open+validate latency (the zero-copy path of record).
load_tsv = items_per_sec(rows, "dataset_load_tsv")
load_mbds = items_per_sec(rows, "dataset_load_mbds")
open_mbds = ns_per_iter(rows, "dataset_open_mbds")
data = {}
if load_tsv and load_mbds:
    data = {
        "tsv_events_per_sec": load_tsv,
        "mbds_events_per_sec": load_mbds,
        "speedup": round(load_mbds / load_tsv, 2),
    }
if open_mbds:
    data["mbds_open_us"] = round(open_mbds / 1e3, 1)
if data:
    report["data"] = data

# Top spans by total time per traced section, alongside the traced
# throughput so the tracing cost is visible next to the numbers of record.
telemetry = {}
for section, recs in traced_telemetry.items():
    spans = sorted(
        (r for r in recs if r.get("kind") == "span"),
        key=lambda r: r.get("total_ns", 0),
        reverse=True,
    )[:10]
    gauges = {r["label"]: r["value"] for r in recs if r.get("kind") in ("counter", "gauge")}
    telemetry[section] = {"top_spans": spans, "gauges": gauges}
if telemetry:
    report["telemetry"] = telemetry
    traced_train = next(
        (r for r in traced_rows if "train_step" in r["name"]), None
    )
    if traced_train:
        report["telemetry"]["train_step_traced_items_per_sec"] = \
            traced_train["items_per_sec"]
if allocator:
    report["allocator"] = allocator

# Serving load test: per-phase QPS / p50 / p90 / p99, per-stage quantile
# breakdown, batch histogram, plus the engine-vs-single-request speedups
# (exp_serve, 16 closed-loop clients).
serve = None
try:
    with open(sys.argv[5]) as fh:
        serve = json.load(fh)
except (OSError, json.JSONDecodeError):
    serve = None
if serve:
    report["serve"] = serve

# Serve observability overhead gate (DESIGN.md §17): interleaved
# (off, MBSSL_TRACE=summary) exp_serve pairs, compared within each pair
# on the sequential phase — there every request is its own batch, so the
# per-request instrumentation exposure is maximal and there are no
# cache/batching dynamics adding variance. Real overhead depresses the
# instrumented side of EVERY pair; machine drift does not. The gate
# therefore fails only when the best pair still shows a regression
# beyond tolerance. Closed-loop serve QPS is noisier than the criterion
# train_step, so this gate defaults to 5% (the trace-diff default)
# rather than the train gate's 2%.
def sequential_qps(path):
    try:
        with open(path) as fh:
            run = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    phase = {p["phase"]: p for p in run.get("phases", [])}.get("sequential")
    return phase["qps"] if phase else None

pairs = []
for off_path in sorted(glob.glob(os.path.join(sys.argv[6], "gate_off_*", "serve.json"))):
    idx = os.path.basename(os.path.dirname(off_path)).rsplit("_", 1)[-1]
    off_qps = sequential_qps(off_path)
    on_qps = sequential_qps(os.path.join(sys.argv[6], f"gate_on_{idx}", "serve.json"))
    if off_qps and on_qps:
        pairs.append({
            "off_qps": round(off_qps, 1),
            "instrumented_qps": round(on_qps, 1),
            "overhead_pct": round(100 * (1 - on_qps / off_qps), 2),
        })
if pairs:
    serve_tol = float(os.environ.get("MBSSL_BENCH_TOL_PCT", "5"))
    best = min(p["overhead_pct"] for p in pairs)
    verdict = {
        "phase": "sequential",
        "pairs": pairs,
        "best_overhead_pct": best,
        "tolerance_pct": serve_tol,
        "ok": best <= serve_tol,
    }
    report.setdefault("serve", {})["instrumentation_check"] = verdict
    if not verdict["ok"]:
        json.dump(report, sys.stdout, indent=2)
        print()
        print(
            f"FAIL: instrumented serve QPS regressed more than {serve_tol}% "
            f"below the telemetry-off partner in all {len(pairs)} interleaved "
            f"pairs (best overhead {best}%)",
            file=sys.stderr,
        )
        sys.exit(1)

# Disabled-mode overhead gate: pass-1 train_step (MBSSL_TRACE=off) must stay
# within MBSSL_BENCH_TOL_PCT of the committed report's figure.
tol_pct = float(os.environ.get("MBSSL_BENCH_TOL_PCT", "2"))
try:
    with open(sys.argv[4]) as fh:
        prev = json.load(fh)
except (OSError, json.JSONDecodeError):
    prev = None
if prev:
    prev_train = next(
        (r for r in prev.get("benchmarks", []) if "train_step" in r["name"]), None
    )
    new_train = next((r for r in rows if "train_step" in r["name"]), None)
    if prev_train and new_train:
        floor = prev_train["items_per_sec"] * (1 - tol_pct / 100)
        verdict = {
            "previous_items_per_sec": prev_train["items_per_sec"],
            "current_items_per_sec": new_train["items_per_sec"],
            "tolerance_pct": tol_pct,
            "ok": new_train["items_per_sec"] >= floor,
        }
        report["overhead_check"] = verdict
        if not verdict["ok"]:
            json.dump(report, sys.stdout, indent=2)
            print()
            print(
                f"FAIL: untraced train_step {new_train['items_per_sec']} items/s "
                f"regressed more than {tol_pct}% below the committed "
                f"{prev_train['items_per_sec']} items/s",
                file=sys.stderr,
            )
            sys.exit(1)

# One throughput-history line per successful run: the three train_step
# figures (fused-ambient / unfused / traced) against rev + date.
def train_step_items(rows):
    r = next((r for r in rows if "train_step" in r["name"]), None)
    return r["items_per_sec"] if r else None

history = {
    "git_rev": git_rev,
    "date": meta["date"],
    "cores": meta["cores"],
    "train_step_items_per_sec": train_step_items(rows),
    "train_step_unfused_items_per_sec": train_step_items(unfused_rows),
    "train_step_traced_items_per_sec": train_step_items(traced_rows),
    "recommend_engine_items_per_sec": rec_engine,
    "recommend_graph_items_per_sec": rec_graph,
    "recommend_speedup": round(rec_engine / rec_graph, 2) if rec_engine and rec_graph else None,
    "recommend_ann_items_per_sec": rec_ann,
    "recommend_ann_xl_items_per_sec": rec_ann_xl,
    "recommend_top_n_xl_items_per_sec": rec_xl,
    "ann_speedup_xl": round(rec_ann_xl / rec_xl, 2) if rec_ann_xl and rec_xl else None,
    "index_build_ms_catalog24000": round(build_24000 / 1e6, 2) if build_24000 else None,
    "dataset_load_tsv_events_per_sec": load_tsv,
    "dataset_load_mbds_events_per_sec": load_mbds,
    "dataset_load_speedup": round(load_mbds / load_tsv, 2) if load_tsv and load_mbds else None,
}
if serve:
    by_phase = {p["phase"]: p for p in serve.get("phases", [])}
    history.update({
        "serve_sequential_qps": round(by_phase["sequential"]["qps"], 1)
            if "sequential" in by_phase else None,
        "serve_batched_qps": round(by_phase["batched"]["qps"], 1)
            if "batched" in by_phase else None,
        "serve_cached_qps": round(by_phase["cached"]["qps"], 1)
            if "cached" in by_phase else None,
        "serve_p50_us": by_phase.get("cached", {}).get("p50_us"),
        "serve_p90_us": by_phase.get("cached", {}).get("p90_us"),
        "serve_p99_us": by_phase.get("cached", {}).get("p99_us"),
        "serve_speedup": serve.get("cached_speedup"),
        "serve_batched_speedup": serve.get("batched_speedup"),
        # Server-side stage p99s for the steady-state phase — the tail
        # figures the observability layer exists to surface.
        "serve_stage_p99_us": {
            s["stage"]: s["p99_us"]
            for s in by_phase.get("cached", {}).get("stages", [])
        },
    })
if pairs:
    best_pair = min(pairs, key=lambda p: p["overhead_pct"])
    history["serve_instrumented_qps"] = best_pair["instrumented_qps"]
    history["serve_instrumentation_overhead_pct"] = best_pair["overhead_pct"]
with open("BENCH_history.jsonl", "a") as fh:
    fh.write(json.dumps(history) + "\n")

json.dump(report, sys.stdout, indent=2)
print()
PY

echo "wrote BENCH_throughput.json:" >&2
cat BENCH_throughput.json >&2
