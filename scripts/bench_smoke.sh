#!/usr/bin/env bash
# Quick throughput smoke: runs the criterion throughput bench in quick mode
# and distills items/sec figures into BENCH_throughput.json at the repo root.
#
# Two passes: the full suite with fusion at its ambient setting, then a
# second `train_step`-only pass with MBSSL_FUSED=off so the report shows the
# fused and unfused training step side by side.
#
# Usage: scripts/bench_smoke.sh [extra cargo-bench args]
# Env:   MBSSL_THREADS — forwarded to the worker pool (see DESIGN.md §Threading).
#        MBSSL_FUSED   — fused transformer kernels (see DESIGN.md §Fusion).
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
raw_unfused=$(mktemp)
trap 'rm -f "$raw" "$raw_unfused"' EXIT

CRITERION_QUICK=1 CRITERION_JSON="$raw" \
    cargo bench -p mbssl-bench --bench throughput "$@"

CRITERION_QUICK=1 CRITERION_JSON="$raw_unfused" \
    MBSSL_FUSED=off MBSSL_BENCH_ONLY=train_step \
    cargo bench -p mbssl-bench --bench throughput "$@"

python3 - "$raw" "$raw_unfused" > BENCH_throughput.json <<'PY'
import datetime, json, os, re, subprocess, sys

def load(path):
    rows, allocator = [], {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec["name"] == "alloc_stats":
                section = rec.get("section", "all")
                allocator[section] = {
                    k: v for k, v in rec.items() if k not in ("name", "section")
                }
                continue
            m = re.search(r"items(\d+)$", rec["name"])
            items = int(m.group(1)) if m else 1
            rows.append({
                "name": rec["name"],
                "ns_per_iter": rec["ns_per_iter"],
                "items_per_iter": items,
                "items_per_sec": round(rec["iters_per_sec"] * items, 1),
            })
    return rows, allocator

rows, allocator = load(sys.argv[1])
unfused_rows, _ = load(sys.argv[2])

git_rev = subprocess.run(
    ["git", "rev-parse", "HEAD"], capture_output=True, text=True
).stdout.strip() or None

meta = {
    "git_rev": git_rev,
    "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "cores": os.cpu_count(),
    "MBSSL_THREADS": os.environ.get("MBSSL_THREADS", ""),
    "MBSSL_ALLOC": os.environ.get("MBSSL_ALLOC", ""),
    "MBSSL_FUSED": os.environ.get("MBSSL_FUSED", ""),
}

report = {"unit": "items/sec", "meta": meta, "benchmarks": rows}
if unfused_rows:
    report["unfused"] = unfused_rows
if allocator:
    report["allocator"] = allocator
json.dump(report, sys.stdout, indent=2)
print()
PY

echo "wrote BENCH_throughput.json:" >&2
cat BENCH_throughput.json >&2
