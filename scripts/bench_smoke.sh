#!/usr/bin/env bash
# Quick throughput smoke: runs the criterion throughput bench in quick mode
# and distills items/sec figures into BENCH_throughput.json at the repo root.
#
# Usage: scripts/bench_smoke.sh [extra cargo-bench args]
# Env:   MBSSL_THREADS — forwarded to the worker pool (see DESIGN.md §Threading).
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

CRITERION_QUICK=1 CRITERION_JSON="$raw" \
    cargo bench -p mbssl-bench --bench throughput "$@"

python3 - "$raw" > BENCH_throughput.json <<'PY'
import json, re, sys

rows = []
allocator = None
with open(sys.argv[1]) as fh:
    for line in fh:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec["name"] == "alloc_stats":
            allocator = {k: v for k, v in rec.items() if k != "name"}
            continue
        m = re.search(r"items(\d+)$", rec["name"])
        items = int(m.group(1)) if m else 1
        rows.append({
            "name": rec["name"],
            "ns_per_iter": rec["ns_per_iter"],
            "items_per_iter": items,
            "items_per_sec": round(rec["iters_per_sec"] * items, 1),
        })

report = {"unit": "items/sec", "benchmarks": rows}
if allocator is not None:
    report["allocator"] = allocator
json.dump(report, sys.stdout, indent=2)
print()
PY

echo "wrote BENCH_throughput.json:" >&2
cat BENCH_throughput.json >&2
