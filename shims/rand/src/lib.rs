//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small API subset it actually uses: `StdRng` (+`SeedableRng`), the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the workspace's
//! reproducibility contract requires (no code depends on the upstream
//! `StdRng` stream).

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's widening-multiply method
/// (bias < 2⁻⁶⁴·span, negligible for the workspace's spans).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (mirrors `rand::SeedableRng`; only the
/// `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice extension trait (mirrors `rand::seq::SliceRandom`; only
    /// `shuffle` is provided).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
