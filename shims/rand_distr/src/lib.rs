//! Offline stand-in for the `rand_distr` crate: `Uniform`, `Normal`,
//! `Gamma`, and `Zipf` over the workspace's [`rand`] shim.
//!
//! Samplers use standard textbook algorithms (Box–Muller, Marsaglia–Tsang,
//! Hörmann–Derflinger rejection-inversion); none of the workspace code
//! depends on upstream `rand_distr` sample streams, only on the
//! distributions' shapes.

use rand::{Rng, RngCore};

/// Error for invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistError(pub &'static str);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistError {}

/// Types that can sample values of `T` (mirrors `rand_distr::Distribution`).
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Float scalars the generic distributions are parameterised over. A single
/// generic `impl` (rather than one per concrete type) keeps calls like
/// `Uniform::new(0.0f32, 1.0)` unambiguous, matching upstream ergonomics.
pub trait Float: Copy + PartialOrd {
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn finite(self) -> bool;
}

impl Float for f32 {
    #[inline]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn finite(self) -> bool {
        self.is_finite()
    }
}

impl Float for f64 {
    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn finite(self) -> bool {
        self.is_finite()
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<F> {
    low: f64,
    span: f64,
    _marker: std::marker::PhantomData<F>,
}

impl<F: Float> Uniform<F> {
    pub fn new(low: F, high: F) -> Uniform<F> {
        assert!(low < high, "Uniform requires low < high");
        Uniform {
            low: low.to_f64(),
            span: high.to_f64() - low.to_f64(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let u: f64 = rng.gen();
        F::from_f64(self.low + u * self.span)
    }
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: f64,
    std: f64,
    _marker: std::marker::PhantomData<F>,
}

impl<F: Float> Normal<F> {
    pub fn new(mean: F, std: F) -> Result<Normal<F>, DistError> {
        if !std.finite() || std.to_f64() < 0.0 {
            return Err(DistError("normal std must be finite and non-negative"));
        }
        Ok(Normal {
            mean: mean.to_f64(),
            std: std.to_f64(),
            _marker: std::marker::PhantomData,
        })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; the second variate is discarded so `sample` can stay
        // `&self`.
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean + self.std * z)
    }
}

/// Gamma distribution with the given shape `k` and scale `θ`.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, DistError> {
        if !(shape > 0.0) || !(scale > 0.0) {
            return Err(DistError("gamma shape and scale must be positive"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze method; the shape < 1 case boosts a
        // shape+1 draw by U^(1/shape).
        let (shape, boost) = if self.shape < 1.0 {
            let u: f64 = loop {
                let u: f64 = rng.gen();
                if u > 0.0 {
                    break u;
                }
            };
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::<f64>::new(0.0, 1.0).unwrap();
        loop {
            let x = normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = rng.gen();
            if u < 1.0 - 0.0331 * x * x * x * x
                || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln())
            {
                return d * v * self.scale * boost;
            }
        }
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `s > 0`: `P(k) ∝ k⁻ˢ`.
///
/// Sampled with Hörmann–Derflinger rejection-inversion, O(1) per draw.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    inv_accept: f64,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Zipf, DistError> {
        if n == 0 {
            return Err(DistError("zipf needs at least one element"));
        }
        if !(s > 0.0) || !s.is_finite() {
            return Err(DistError("zipf exponent must be positive and finite"));
        }
        let nf = n as f64;
        let h_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_n = Self::h_integral(nf + 0.5, s);
        let inv_accept = 2.0 - Self::h_integral_inv(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Ok(Zipf {
            n: nf,
            s,
            h_x1,
            h_n,
            inv_accept,
        })
    }

    /// ∫ x⁻ˢ dx (antiderivative, shifted so the s→1 limit is log).
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        if (1.0 - s).abs() < 1e-9 {
            log_x
        } else {
            ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
        }
    }

    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    fn h_integral_inv(x: f64, s: f64) -> f64 {
        if (1.0 - s).abs() < 1e-9 {
            x.exp()
        } else {
            let t = (x * (1.0 - s)).max(-1.0);
            (t.ln_1p() / (1.0 - s)).exp()
        }
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen();
            let u = self.h_n + u * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inv(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if (k - x).abs() <= self.inv_accept
                || u >= Self::h_integral(k + 0.5, self.s) - Self::h(k, self.s)
            {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::<f64>::new(2.0, 3.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new(-1.0f32, 4.0);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((-1.0..4.0).contains(&v));
        }
    }

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(shape, scale) in &[(1.0, 1.0), (2.5, 0.5), (0.5, 2.0)] {
            let d = Gamma::new(shape, scale).unwrap();
            let n = 50_000;
            let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            let expect = shape * scale;
            assert!(
                (mean - expect).abs() < 0.15 * expect.max(0.5),
                "gamma({shape},{scale}) mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn zipf_is_in_range_and_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Zipf::new(100, 1.1).unwrap();
        let n = 20_000;
        let mut ones = 0usize;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
            assert_eq!(v, v.round());
            if v == 1.0 {
                ones += 1;
            }
        }
        // Rank 1 should hold far more than the uniform 1% of the mass.
        assert!(ones > n / 20, "rank-1 mass too small: {ones}/{n}");
    }

    #[test]
    fn zipf_handles_exponent_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Zipf::new(50, 1.0).unwrap();
        for _ in 0..5_000 {
            let v = d.sample(&mut rng);
            assert!((1.0..=50.0).contains(&v));
        }
    }
}
