//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use, driven by the in-repo `rand` shim. Differences from upstream:
//! no shrinking (a failing case panics with the generated inputs via the
//! normal assert message), and cases are generated from a fixed seed mixed
//! with the case index, so runs are deterministic.

use rand::{Rng, StdRng};

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use super::*;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3)
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng, StdRng};

    /// Inclusive-exclusive element-count bounds for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use rand::{Rng, StdRng};

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// `prop::sample::select(items)`: uniform choice from a fixed list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop`, the path-style module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::{SeedableRng, StdRng};

    /// Deterministic per-case RNG: fixed base seed mixed with the case
    /// index so each case draws an independent stream.
    pub fn case_rng(case: u64) -> StdRng {
        StdRng::seed_from_u64(0x5eed_cafe_f00d_0001 ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

/// The `proptest!` test-harness macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::__rt::case_rng(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)*);
    };
}

/// `prop_assert!` maps to a plain `assert!` (failures panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_links_sizes(
            (n, v) in (2usize..8).prop_flat_map(|n| (Just(n), prop::collection::vec(0f32..1.0, n..=n)))
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn select_draws_from_list() {
        use crate::strategy::Strategy;
        let s = crate::sample::select(vec![3u32, 5, 9]);
        let mut rng = crate::__rt::case_rng(0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!([3, 5, 9].contains(&v));
        }
    }
}
