//! Offline stand-in for `criterion`.
//!
//! Measures each benchmark with an adaptive wall-clock loop (calibrate →
//! batch → median over samples) and prints one line per benchmark. Two
//! environment variables integrate it with the repo's tooling:
//!
//! - `CRITERION_QUICK=1` (or a `--quick` CLI flag): shrink warmup/samples
//!   for smoke runs, as used by `scripts/bench_smoke.sh`;
//! - `CRITERION_JSON=<path>`: append one JSON line per benchmark
//!   (`{"name": ..., "ns_per_iter": ..., "iters_per_sec": ...}`) so scripts
//!   can build machine-readable throughput reports.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v != "0").unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// Benchmark harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        if quick_mode() {
            Criterion {
                sample_count: 5,
                target_sample_time: Duration::from_millis(5),
            }
        } else {
            Criterion {
                sample_count: 12,
                target_sample_time: Duration::from_millis(25),
            }
        }
    }
}

impl Criterion {
    /// Accepted for upstream compatibility; the shim interprets it as a cap
    /// on its own (much smaller) sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = self.sample_count.min(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_count, self.target_sample_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Namespaced benchmark collection (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &full,
            self.criterion.sample_count,
            self.criterion.target_sample_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &full,
            self.criterion.sample_count,
            self.criterion.target_sample_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = self.criterion.sample_count.min(n.max(2));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    target_sample_time: Duration,
    f: &mut F,
) {
    // Calibrate: one iteration to size the batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    // Report the fastest sample: on a shared/1-CPU box the minimum is the
    // most repeatable statistic — slower samples measure scheduler noise,
    // not the code under test.
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let best = per_iter_ns[0];
    let iters_per_sec = 1.0e9 / best;

    println!("bench: {name:<48} {best:>14.1} ns/iter ({iters_per_sec:>12.1} iter/s)");

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_sec\": {:.3}}}",
                    name.replace('"', "'"),
                    best,
                    iters_per_sec
                );
            }
        }
    }
}

/// Declares a group runner function (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_count: 2,
            target_sample_time: Duration::from_micros(200),
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose_names() {
        let id = BenchmarkId::from_parameter(64);
        assert_eq!(id.0, "64");
        let id = BenchmarkId::new("gemm", 128);
        assert_eq!(id.0, "gemm/128");
    }
}
