//! Offline stand-in for `serde_json`: renders and parses the `serde` shim's
//! [`Value`] tree as standard JSON text.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON text for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Pretty-printed (2-space indent) JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error)
}

// ----------------------------------------------------------------------
// Rendering
// ----------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parsing (recursive descent)
// ----------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected input {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(1.0)),
            ("b".into(), Value::Arr(vec![Value::Num(1.5), Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("hi \"there\"\n".into())),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Raw(v.clone())).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let text = to_string(&42usize).unwrap();
        assert_eq!(text, "42");
        let neg = to_string(&-7i64).unwrap();
        assert_eq!(neg, "-7");
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let f: f64 = from_str("2.5e3").unwrap();
        assert_eq!(f, 2500.0);
        let s: String = from_str("\"caf\\u00e9\"").unwrap();
        assert_eq!(s, "café");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }
}
