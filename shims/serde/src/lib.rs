//! Offline stand-in for `serde`.
//!
//! Real serde abstracts over data formats; the only format this workspace
//! uses is JSON (via the sibling `serde_json` shim), so the traits here
//! convert directly to and from an in-memory JSON [`value::Value`] tree.
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` come from the
//! `serde_derive` shim and target these traits.

// Let the derive macros' `::serde::` paths resolve inside this crate's own
// tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    /// An in-memory JSON document.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        /// All numbers are carried as `f64` (ample for this workspace:
        /// counts, metrics, and ids all fit in 53 bits).
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        /// Insertion-ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }
}

use value::Value;

/// Conversion into a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// A `Value` round-trips as itself, so callers can deserialize arbitrary
// JSON (e.g. telemetry trace records) without declaring a schema type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

// ----------------------------------------------------------------------
// Serialize impls for std types
// ----------------------------------------------------------------------

macro_rules! serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

// ----------------------------------------------------------------------
// Deserialize impls for std types
// ----------------------------------------------------------------------

macro_rules! deserialize_num {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(format!("expected number, found {v:?}")),
                }
            }
        }
    )*};
}

deserialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, found {v:?}")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!("expected string, found {v:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(format!("expected array, found {v:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(format!("expected 2-element array, found {v:?}")),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(format!("expected object, found {v:?}")),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(format!("expected object, found {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: f64,
        name: String,
        tags: Vec<u32>,
        extra: Option<bool>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Kind {
        Plain,
        Tagged(usize),
        Pair(u32, u32),
    }

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: 1.5,
            name: "a\"b".into(),
            tags: vec![1, 2, 3],
            extra: None,
        };
        let v = p.to_value();
        let back = Point::from_value(&v).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn enum_roundtrip() {
        for k in [Kind::Plain, Kind::Tagged(7), Kind::Pair(1, 2)] {
            let v = k.to_value();
            let back = Kind::from_value(&v).unwrap();
            assert_eq!(k, back);
        }
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Obj(vec![("x".into(), Value::Num(1.0))]);
        assert!(Point::from_value(&v).is_err());
    }
}
