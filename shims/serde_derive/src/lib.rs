//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes the workspace actually uses — structs with named fields, enums
//! with unit variants, and enums with tuple variants — by walking the raw
//! token stream (the container has no `syn`/`quote`). Anything fancier
//! (generics, struct variants, serde attributes) is rejected with a clear
//! compile error so misuse fails loudly instead of silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Obj(vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v.arity {
                    0 => format!(
                        "{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),",
                        name = item.name,
                        v = v.name
                    ),
                    1 => format!(
                        "{name}::{v}(x0) => ::serde::value::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))]),",
                        name = item.name,
                        v = v.name
                    ),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::value::Value::Obj(vec![(\"{v}\".to_string(), ::serde::value::Value::Arr(vec![{vals}]))]),",
                            name = item.name,
                            v = v.name,
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n fn to_value(&self) -> ::serde::value::Value {{ {} }}\n}}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match obj.iter().find(|(k, _)| k == \"{f}\") {{\n\
                           Some((_, fv)) => ::serde::Deserialize::from_value(fv)?,\n\
                           None => return Err(concat!(\"missing field `\", \"{f}\", \"`\").to_string()),\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "let obj = match v {{\n\
                   ::serde::value::Value::Obj(m) => m,\n\
                   _ => return Err(\"expected JSON object\".to_string()),\n\
                 }};\n\
                 Ok({name} {{ {inits} }})",
                name = item.name,
                inits = inits.join(",\n")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| {
                    format!(
                        "if s == \"{v}\" {{ return Ok({name}::{v}); }}",
                        name = item.name,
                        v = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    if v.arity == 1 {
                        format!(
                            "if k == \"{v}\" {{ return Ok({name}::{v}(::serde::Deserialize::from_value(val)?)); }}",
                            name = item.name,
                            v = v.name
                        )
                    } else {
                        let gets: Vec<String> = (0..v.arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \"tuple variant too short\".to_string())?)?"
                                )
                            })
                            .collect();
                        format!(
                            "if k == \"{v}\" {{\n\
                               let items = match val {{\n\
                                 ::serde::value::Value::Arr(a) => a,\n\
                                 _ => return Err(\"expected array for tuple variant\".to_string()),\n\
                               }};\n\
                               return Ok({name}::{v}({gets}));\n\
                             }}",
                            name = item.name,
                            v = v.name,
                            gets = gets.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                   ::serde::value::Value::Str(s) => {{ {units} Err(format!(\"unknown variant `{{s}}`\")) }}\n\
                   ::serde::value::Value::Obj(m) if m.len() == 1 => {{\n\
                     let (k, val) = &m[0];\n\
                     {payloads}\n\
                     Err(format!(\"unknown variant `{{k}}`\"))\n\
                   }}\n\
                   _ => Err(\"expected string or single-key object for enum\".to_string()),\n\
                 }}",
                units = unit_arms.join(" "),
                payloads = payload_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {} {{\n fn from_value(v: &::serde::value::Value) -> Result<Self, String> {{ {} }}\n}}",
        item.name, body
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// Number of tuple fields (0 for unit variants).
    arity: usize,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes (`#[...]`) and visibility/qualifier keywords.
    let mut is_enum = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [..] group
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        i += 1;
                        // Skip `(crate)` etc. after `pub`.
                        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            i += 1;
                        }
                    }
                    "struct" => {
                        is_enum = Some(false);
                        i += 1;
                        break;
                    }
                    "enum" => {
                        is_enum = Some(true);
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    let is_enum = is_enum.expect("derive input must be a struct or enum");

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("shim serde_derive does not support generic types (deriving for `{name}`)");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1, // e.g. `where` clauses would land here (unused)
            None => panic!("no braced body found for `{name}` (tuple structs unsupported)"),
        }
    };

    let kind = if is_enum {
        ItemKind::Enum(parse_variants(body, &name))
    } else {
        ItemKind::Struct(parse_fields(body, &name))
    };
    Item { name, kind }
}

/// Parses `field: Type, ...` lists, tracking angle-bracket depth so commas
/// inside `Vec<(A, B)>`-style types don't split fields.
fn parse_fields(body: TokenStream, container: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
            _ => {}
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("unexpected token in `{container}` fields: {other}"),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("expected `:` after field `{fname}` in `{container}`"),
        }
        // Consume the type: until a comma at angle-depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

fn parse_variants(body: TokenStream, container: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            _ => {}
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("unexpected token in `{container}` variants: {other}"),
        };
        i += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("shim serde_derive does not support struct variants (`{container}::{vname}`)")
                }
                _ => {}
            }
        }
        // Skip to past the next top-level comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name: vname, arity });
    }
    variants
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}
