//! Cross-crate substrate integration tests: tensor ⊗ hypergraph ⊗ data ⊗
//! metrics interplay that no single crate's unit tests can cover.

use mbssl::data::preprocess::{leave_one_out, SplitConfig};
use mbssl::data::sampler::{Batch, NegativeSampler};
use mbssl::data::synthetic::SyntheticConfig;
use mbssl::data::Behavior;
use mbssl::hypergraph::{build_batch_incidence, HypergraphConfig, HypergraphTransformerLayer};
use mbssl::tensor::nn::{Mode, Module};
use mbssl::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The hypergraph layer's gradient w.r.t. its input matches finite
/// differences — the deepest composite the engine runs.
#[test]
fn hypergraph_layer_gradcheck() {
    let mut rng = StdRng::seed_from_u64(5);
    let layer = HypergraphTransformerLayer::new(4, 1, 8, 0.0, 5, &mut rng);
    let len = 6;
    let items: Vec<usize> = (1..=len).map(|i| 1 + i % 3).collect();
    let behaviors = vec![1usize, 4, 1, 1, 4, 1];
    let valid = vec![1.0f32; len];
    let cfg = HypergraphConfig {
        behavior_tags: vec![1, 4],
        window: 3,
        max_item_edges: 2,
    };
    let incidence = build_batch_incidence(&cfg, &items, &behaviors, &valid, 1, len, 5);

    let x0: Vec<f32> = (0..len * 4).map(|i| ((i * 13 % 17) as f32) * 0.1 - 0.8).collect();
    let weight: Vec<f32> = (0..len * 4).map(|i| ((i * 7 % 11) as f32) * 0.2 - 1.0).collect();
    let w = Tensor::from_vec(weight, [1, len, 4]);

    let f = |data: Vec<f32>| -> f32 {
        let x = Tensor::from_vec(data, [1, len, 4]);
        layer
            .forward(&x, &incidence, &mut Mode::Eval)
            .mul(&w)
            .sum_all()
            .item()
    };

    let x = Tensor::from_vec(x0.clone(), [1, len, 4]).requires_grad();
    layer
        .forward(&x, &incidence, &mut Mode::Eval)
        .mul(&w)
        .sum_all()
        .backward();
    let analytic = x.grad().unwrap();

    let eps = 1e-2f32;
    for i in (0..x0.len()).step_by(3) {
        let mut plus = x0.clone();
        plus[i] += eps;
        let mut minus = x0.clone();
        minus[i] -= eps;
        let numeric = (f(plus) - f(minus)) / (2.0 * eps);
        let a = analytic[i];
        let scale = a.abs().max(numeric.abs()).max(1.0);
        assert!(
            (a - numeric).abs() <= 0.05 * scale + 0.02,
            "grad mismatch at {i}: analytic {a}, numeric {numeric}"
        );
    }
}

/// Batch encoding and incidence building agree on sequence structure.
#[test]
fn batch_and_incidence_agree_on_validity() {
    let g = SyntheticConfig::taobao_like(21).scaled(0.05).generate();
    let split = leave_one_out(&g.dataset, &SplitConfig::default());
    let histories: Vec<_> = split.test.iter().take(8).map(|t| &t.history).collect();
    let batch = Batch::encode_histories(&histories);
    let cfg = HypergraphConfig {
        behavior_tags: g.dataset.behaviors.iter().map(|b| b.index()).collect(),
        window: 8,
        max_item_edges: 4,
    };
    let incidence = build_batch_incidence(
        &cfg,
        &batch.items,
        &batch.behaviors,
        &batch.valid,
        batch.size,
        batch.max_len,
        Behavior::VOCAB,
    );
    // Every valid position is a member of at least one edge; padded
    // positions of none.
    for b in 0..batch.size {
        for t in 0..batch.max_len {
            let member_count: f32 = (0..incidence.num_edges)
                .map(|e| incidence.membership[(b * incidence.num_edges + e) * batch.max_len + t])
                .sum();
            if batch.valid[b * batch.max_len + t] != 0.0 {
                assert!(member_count >= 1.0, "valid position in no hyperedge");
            } else {
                assert_eq!(member_count, 0.0, "padded position joined a hyperedge");
            }
        }
    }
}

/// Candidate lists from the sampler always contain the ground-truth target
/// at index 0 and no duplicates — the invariant the metrics rely on.
#[test]
fn eval_protocol_invariants_hold_at_scale() {
    use mbssl::data::sampler::EvalCandidates;
    let g = SyntheticConfig::tmall_like(22).scaled(0.1).generate();
    let split = leave_one_out(&g.dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&g.dataset);
    let candidates = EvalCandidates::build(&split.test, &sampler, 99, 1);
    for (inst, list) in split.test.iter().zip(candidates.lists.iter()) {
        assert_eq!(list[0], inst.target);
        assert_eq!(list.len(), 100);
        let mut sorted = list.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "duplicate candidates");
        // Negatives never collide with the user's history.
        let seen = sampler.seen_by(inst.user);
        for &neg in &list[1..] {
            assert!(!seen.contains(&neg), "negative {neg} was interacted with");
        }
    }
}

/// A trained layer's parameters move under the optimizer through the full
/// tensor→hypergraph stack (no silently detached parameters).
#[test]
fn optimizer_updates_hypergraph_parameters() {
    use mbssl::tensor::optim::{Adam, Optimizer};
    let mut rng = StdRng::seed_from_u64(7);
    let layer = HypergraphTransformerLayer::new(8, 2, 16, 0.0, 5, &mut rng);
    let params = layer.param_map("hg");
    let before: Vec<Vec<f32>> = params.tensors().iter().map(|t| t.to_vec()).collect();
    let mut opt = Adam::new(params.tensors(), 0.01);

    let len = 8;
    let items: Vec<usize> = (1..=len).collect();
    let behaviors = vec![1usize; len];
    let valid = vec![1.0f32; len];
    let cfg = HypergraphConfig {
        behavior_tags: vec![1],
        window: 4,
        max_item_edges: 0,
    };
    let incidence = build_batch_incidence(&cfg, &items, &behaviors, &valid, 1, len, 5);
    let x: Vec<f32> = (0..len * 8).map(|i| (i % 5) as f32 * 0.1).collect();
    let x = Tensor::from_vec(x, [1, len, 8]);
    for _ in 0..3 {
        opt.zero_grad();
        layer
            .forward(&x, &incidence, &mut Mode::Eval)
            .square()
            .mean_all()
            .backward();
        opt.step();
    }
    let after: Vec<Vec<f32>> = params.tensors().iter().map(|t| t.to_vec()).collect();
    let mut moved = 0;
    for (b, a) in before.iter().zip(after.iter()) {
        if b != a {
            moved += 1;
        }
    }
    assert!(
        moved >= params.len() - 1,
        "only {moved}/{} parameter tensors moved",
        params.len()
    );
}
