//! Workspace integration tests: the full pipeline across every crate.
//!
//! These train real (tiny) models, so they are deliberately small; the
//! experiment binaries in `crates/bench` are the full-scale versions.

use mbssl::baselines::{Pop, SasRec};
use mbssl::core::{
    evaluate, BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, TrainableRecommender, Trainer,
};
use mbssl::data::preprocess::{leave_one_out, SplitConfig};
use mbssl::data::sampler::{EvalCandidates, NegativeSampler};
use mbssl::data::synthetic::SyntheticConfig;
use mbssl::tensor::serialize::{load_params, save_params};

fn tiny_config() -> ModelConfig {
    ModelConfig {
        dim: 16,
        heads: 2,
        num_layers: 1,
        ffn_hidden: 32,
        num_interests: 2,
        extractor_hidden: 16,
        max_seq_len: 50,
        dropout: 0.1,
        ..ModelConfig::default()
    }
}

struct Setup {
    dataset: mbssl::data::Dataset,
    split: mbssl::data::preprocess::Split,
    sampler: NegativeSampler,
    candidates: EvalCandidates,
}

fn setup(seed: u64, scale: f64) -> Setup {
    let dataset = SyntheticConfig::taobao_like(seed).scaled(scale).generate().dataset;
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let candidates = EvalCandidates::build(&split.test, &sampler, 99, seed);
    Setup {
        dataset,
        split,
        sampler,
        candidates,
    }
}

#[test]
fn mbmissl_learns_and_beats_popularity() {
    let s = setup(171, 0.08);
    let schema = BehaviorSchema::new(s.dataset.behaviors.clone(), s.dataset.target_behavior);
    let model = Mbmissl::new(s.dataset.num_items, schema, tiny_config());
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        patience: 6,
        ..TrainConfig::default()
    });
    let report = trainer.fit(&model, &s.split, &s.sampler);
    assert!(report.epochs_run >= 3, "training aborted too early");

    let ours = evaluate(&model, &s.split.test, &s.candidates, 256).aggregate();
    let pop = Pop::fit(&s.split);
    let baseline = evaluate(&pop, &s.split.test, &s.candidates, 256).aggregate();
    assert!(
        ours.ndcg10 > baseline.ndcg10,
        "MBMISSL ({:.4}) must beat POP ({:.4}) on planted-structure data",
        ours.ndcg10,
        baseline.ndcg10
    );
    // And comfortably beat random guessing (HR@10 ≈ 0.1 on 100 candidates).
    assert!(ours.hr10 > 0.15, "HR@10 {:.4} barely above random", ours.hr10);
}

#[test]
fn training_improves_over_init() {
    let s = setup(172, 0.06);
    let schema = BehaviorSchema::new(s.dataset.behaviors.clone(), s.dataset.target_behavior);
    let model = Mbmissl::new(s.dataset.num_items, schema, tiny_config());
    let before = evaluate(&model, &s.split.test, &s.candidates, 256).aggregate();
    let trainer = Trainer::new(TrainConfig {
        epochs: 5,
        patience: 5,
        ..TrainConfig::default()
    });
    trainer.fit(&model, &s.split, &s.sampler);
    let after = evaluate(&model, &s.split.test, &s.candidates, 256).aggregate();
    assert!(
        after.ndcg10 > before.ndcg10,
        "no improvement: {:.4} -> {:.4}",
        before.ndcg10,
        after.ndcg10
    );
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let s = setup(173, 0.05);
    let schema = BehaviorSchema::new(s.dataset.behaviors.clone(), s.dataset.target_behavior);
    let model = Mbmissl::new(s.dataset.num_items, schema.clone(), tiny_config());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        patience: 2,
        ..TrainConfig::default()
    });
    trainer.fit(&model, &s.split, &s.sampler);

    let mut buf = Vec::new();
    save_params(&model.named_params(), &mut buf).unwrap();

    let restored = Mbmissl::new(s.dataset.num_items, schema, tiny_config());
    load_params(&restored.named_params(), &mut buf.as_slice()).unwrap();

    let a = evaluate(&model, &s.split.test, &s.candidates, 256);
    let b = evaluate(&restored, &s.split.test, &s.candidates, 256);
    assert_eq!(a.ranks, b.ranks, "restored model ranks differ");
}

#[test]
fn evaluation_is_deterministic_across_runs() {
    let s = setup(174, 0.05);
    let schema = BehaviorSchema::new(s.dataset.behaviors.clone(), s.dataset.target_behavior);
    let model = Mbmissl::new(s.dataset.num_items, schema, tiny_config());
    let a = evaluate(&model, &s.split.test, &s.candidates, 64);
    let b = evaluate(&model, &s.split.test, &s.candidates, 256);
    assert_eq!(a.ranks, b.ranks, "batch size changed evaluation results");
}

#[test]
fn same_seed_reproduces_training_exactly() {
    let s = setup(175, 0.04);
    let schema = BehaviorSchema::new(s.dataset.behaviors.clone(), s.dataset.target_behavior);
    let run = || {
        let model = Mbmissl::new(s.dataset.num_items, schema.clone(), tiny_config());
        let trainer = Trainer::new(TrainConfig {
            epochs: 2,
            patience: 2,
            seed: 99,
            ..TrainConfig::default()
        });
        trainer.fit(&model, &s.split, &s.sampler);
        evaluate(&model, &s.split.test, &s.candidates, 256).ranks
    };
    assert_eq!(run(), run(), "training is not reproducible from the seed");
}

#[test]
fn sasrec_baseline_trains_on_same_pipeline() {
    let s = setup(176, 0.06);
    let model = SasRec::new(s.dataset.num_items, 16, 2, 1, 50, 0.1, 5);
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        patience: 4,
        ..TrainConfig::default()
    });
    let report = trainer.fit(&model, &s.split, &s.sampler);
    assert!(report.num_params > 0);
    let metrics = evaluate(&model, &s.split.test, &s.candidates, 256).aggregate();
    assert!(metrics.hr10 > 0.10, "SASRec below random: {}", metrics.hr10);
}

#[test]
fn temporal_split_protocol_trains_end_to_end() {
    use mbssl::data::preprocess::temporal_split;
    let dataset = SyntheticConfig::taobao_like(178).scaled(0.06).generate().dataset;
    let split = temporal_split(&dataset, &SplitConfig::default(), 0.1, 0.2);
    assert!(!split.train.is_empty() && !split.test.is_empty());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let candidates = EvalCandidates::build(&split.test, &sampler, 99, 3);
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let model = Mbmissl::new(dataset.num_items, schema, tiny_config());
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        patience: 4,
        ..TrainConfig::default()
    });
    trainer.fit(&model, &split, &sampler);
    let ours = evaluate(&model, &split.test, &candidates, 256).aggregate();
    // Must clearly beat random guessing under the alternative protocol too.
    assert!(ours.hr10 > 0.15, "temporal-split HR@10 too low: {}", ours.hr10);
}

#[test]
fn all_model_variants_train_one_epoch_without_nan() {
    use mbssl::core::config::{EncoderKind, ExtractorKind};
    let s = setup(177, 0.04);
    let schema = BehaviorSchema::new(s.dataset.behaviors.clone(), s.dataset.target_behavior);
    for encoder in [EncoderKind::Hypergraph, EncoderKind::Transformer] {
        for extractor in [ExtractorKind::SelfAttentive, ExtractorKind::DynamicRouting] {
            let config = ModelConfig {
                encoder,
                extractor,
                ..tiny_config()
            };
            let model = Mbmissl::new(s.dataset.num_items, schema.clone(), config);
            let trainer = Trainer::new(TrainConfig {
                epochs: 1,
                patience: 1,
                ..TrainConfig::default()
            });
            let report = trainer.fit(&model, &s.split, &s.sampler);
            let loss = report.history[0].train_loss;
            assert!(
                loss.is_finite() && loss > 0.0,
                "bad loss {loss} for {encoder:?}/{extractor:?}"
            );
        }
    }
}
