//! End-to-end tests of the `mbssl` CLI binary: stats → train → evaluate →
//! recommend on a generated TSV log.

use std::path::PathBuf;
use std::process::Command;

use mbssl::data::io::save_tsv;
use mbssl::data::synthetic::SyntheticConfig;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mbssl")
}

fn setup_log(dir: &std::path::Path) -> PathBuf {
    let dataset = SyntheticConfig::tmall_like(5).scaled(0.05).generate().dataset;
    let path = dir.join("log.tsv");
    save_tsv(&dataset, &path).expect("write TSV");
    path
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn mbssl CLI");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join("mbssl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let log = setup_log(&dir);
    let log_s = log.to_str().unwrap();
    let ckpt = dir.join("model.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    // stats
    let (ok, text) = run(&["stats", "--data", log_s, "--target", "favorite"]);
    assert!(ok, "stats failed: {text}");
    assert!(text.contains("users"));
    assert!(text.contains("favorite"));

    // train (tiny settings)
    let (ok, text) = run(&[
        "train", "--data", log_s, "--target", "favorite", "--model", ckpt_s,
        "--epochs", "2", "--dim", "16", "--interests", "2",
    ]);
    assert!(ok, "train failed: {text}");
    assert!(ckpt.exists(), "checkpoint not written");

    // evaluate with matching dims
    let (ok, text) = run(&[
        "evaluate", "--data", log_s, "--target", "favorite", "--model", ckpt_s,
        "--dim", "16", "--interests", "2",
    ]);
    assert!(ok, "evaluate failed: {text}");
    assert!(text.contains("HR@10"), "no metrics printed: {text}");

    // recommend
    let (ok, text) = run(&[
        "recommend", "--data", log_s, "--target", "favorite", "--model", ckpt_s,
        "--dim", "16", "--interests", "2", "--user", "0", "--top", "5",
    ]);
    assert!(ok, "recommend failed: {text}");
    assert!(text.contains("1."), "no ranked list printed: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// synth → traced train with a run ledger → trace summary/diff → report:
/// the full observability loop through the real binary.
#[test]
fn cli_trace_and_report_workflow() {
    let dir = std::env::temp_dir().join("mbssl_cli_trace_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("synthetic.tsv");
    let log_s = log.to_str().unwrap();
    let ckpt = dir.join("model.ckpt");
    let trace = dir.join("trace.jsonl");
    let trace_s = trace.to_str().unwrap();
    let run_dir = dir.join("run0");

    // synth writes a loadable TSV.
    let (ok, text) = run(&["synth", "--out", log_s, "--scale", "0.05", "--seed", "11"]);
    assert!(ok, "synth failed: {text}");
    assert!(log.exists());

    // Traced training that also writes a run ledger.
    let (ok, text) = run(&[
        "train", "--data", log_s, "--target", "purchase", "--model",
        ckpt.to_str().unwrap(), "--epochs", "2", "--dim", "16", "--interests", "2",
        "--trace", &format!("jsonl:{trace_s}"), "--run-dir", run_dir.to_str().unwrap(),
    ]);
    assert!(ok, "traced train failed: {text}");
    assert!(trace.exists(), "no trace written");
    assert!(run_dir.join("manifest.json").exists(), "no manifest written");
    assert!(run_dir.join("metrics.jsonl").exists(), "no metrics written");

    // trace summary renders the hierarchy and exports collapsed stacks.
    let folded = dir.join("trace.folded");
    let (ok, text) = run(&[
        "trace", "summary", trace_s, "--collapsed", folded.to_str().unwrap(),
    ]);
    assert!(ok, "trace summary failed: {text}");
    assert!(text.contains("trainer.train_step"), "{text}");
    assert!(text.contains("self%"), "{text}");
    let folded_text = std::fs::read_to_string(&folded).unwrap();
    assert!(
        folded_text.contains("trainer.epoch;trainer.train_step"),
        "collapsed stacks lack the epoch>step edge:\n{folded_text}"
    );

    // Identical traces diff clean (exit 0); a synthetically slowed trace
    // must fail the gate (exit 1).
    let (ok, text) = run(&["trace", "diff", trace_s, trace_s]);
    assert!(ok, "identical traces flagged as regression: {text}");
    assert!(text.contains("0 regression(s)"), "{text}");

    let slowed = dir.join("slowed.jsonl");
    let slowed_text = std::fs::read_to_string(&trace)
        .unwrap()
        .lines()
        .map(|line| {
            if line.contains("\"label\":\"trainer.train_step\"") {
                // Double total_ns on the hot span: a 100% mean regression.
                let mut out = String::new();
                for part in line.split(",\"total_ns\":") {
                    if out.is_empty() {
                        out.push_str(part);
                    } else {
                        let digits: String =
                            part.chars().take_while(|c| c.is_ascii_digit()).collect();
                        let rest = &part[digits.len()..];
                        let doubled = digits.parse::<u64>().unwrap() * 2;
                        out.push_str(&format!(",\"total_ns\":{doubled}{rest}"));
                    }
                }
                out
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&slowed, slowed_text).unwrap();
    let (ok, text) = run(&["trace", "diff", trace_s, slowed.to_str().unwrap(), "--tol", "5"]);
    assert!(!ok, "slowed trace passed the diff gate: {text}");
    assert!(text.contains("regressed"), "{text}");
    assert!(text.contains("trainer.train_step"), "{text}");

    // report renders curves + comparison over two run dirs.
    let run_dir2 = dir.join("run1");
    let (ok, text) = run(&[
        "train", "--data", log_s, "--target", "purchase", "--model",
        ckpt.to_str().unwrap(), "--epochs", "2", "--dim", "16", "--interests", "2",
        "--run-dir", run_dir2.to_str().unwrap(),
    ]);
    assert!(ok, "second run failed: {text}");
    let (ok, text) = run(&[
        "report", run_dir.to_str().unwrap(), run_dir2.to_str().unwrap(),
    ]);
    assert!(ok, "report failed: {text}");
    assert!(text.contains("run run0:"), "{text}");
    assert!(text.contains("run run1:"), "{text}");
    assert!(text.contains("NDCG@10"), "{text}");
    assert!(text.contains("items/s"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A `.mbds` sibling next to a TSV is only trusted when provably
/// equivalent to parsing the TSV: non-default k-core thresholds in its
/// header and a TSV modified after conversion must both warn-and-degrade
/// to the TSV parse, while a fresh default-threshold sibling is used.
#[test]
fn cli_sibling_trust_checks() {
    let dir = std::env::temp_dir().join("mbssl_cli_sibling_test");
    std::fs::create_dir_all(&dir).unwrap();
    let log = setup_log(&dir);
    let log_s = log.to_str().unwrap();
    let sibling = dir.join("log.tsv.mbds");
    let sibling_s = sibling.to_str().unwrap();

    // Converted with non-default thresholds: discovered but refused.
    let (ok, text) = run(&[
        "convert", "--data", log_s, "--target", "favorite", "--out", sibling_s,
        "--k-user", "2", "--k-item", "2",
    ]);
    assert!(ok, "convert failed: {text}");
    let (ok, text) = run(&["stats", "--data", log_s, "--target", "favorite"]);
    assert!(ok, "stats failed: {text}");
    assert!(
        text.contains("2/2 k-core thresholds"),
        "expected threshold warning: {text}"
    );

    // Re-converted with the defaults: used.
    let (ok, text) = run(&[
        "convert", "--data", log_s, "--target", "favorite", "--out", sibling_s,
    ]);
    assert!(ok, "convert failed: {text}");
    let (ok, text) = run(&["stats", "--data", log_s, "--target", "favorite"]);
    assert!(ok, "stats failed: {text}");
    assert!(text.contains("data: using"), "expected sibling pickup: {text}");

    // TSV touched after conversion: stale, parse the TSV again.
    let newer = std::time::SystemTime::now() + std::time::Duration::from_secs(60);
    std::fs::OpenOptions::new()
        .append(true)
        .open(&log)
        .unwrap()
        .set_modified(newer)
        .unwrap();
    let (ok, text) = run(&["stats", "--data", log_s, "--target", "favorite"]);
    assert!(ok, "stats failed: {text}");
    assert!(
        text.contains("modified after it was converted"),
        "expected staleness warning: {text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_input() {
    let (ok, text) = run(&["train", "--target", "favorite"]);
    assert!(!ok);
    assert!(text.contains("missing --data") || text.contains("error"), "{text}");

    let (ok, _) = run(&["nonsense"]);
    assert!(!ok);

    // trace/report argument errors fail cleanly with a usage hint.
    let (ok, text) = run(&["trace", "summary"]);
    assert!(!ok);
    assert!(text.contains("missing trace JSONL file"), "{text}");
    let (ok, text) = run(&["trace", "frobnicate", "x.jsonl"]);
    assert!(!ok);
    assert!(text.contains("unknown trace subcommand"), "{text}");
    let (ok, text) = run(&["report"]);
    assert!(!ok);
    assert!(text.contains("RUN_DIR"), "{text}");

    let dir = std::env::temp_dir().join("mbssl_cli_test_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let log = setup_log(&dir);
    // Mismatched checkpoint dims must fail cleanly, not panic.
    let ckpt = dir.join("never_written.ckpt");
    let (ok, text) = run(&[
        "evaluate", "--data", log.to_str().unwrap(), "--target", "favorite",
        "--model", ckpt.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(text.contains("error"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
