//! End-to-end tests of the `mbssl` CLI binary: stats → train → evaluate →
//! recommend on a generated TSV log.

use std::path::PathBuf;
use std::process::Command;

use mbssl::data::io::save_tsv;
use mbssl::data::synthetic::SyntheticConfig;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mbssl")
}

fn setup_log(dir: &std::path::Path) -> PathBuf {
    let dataset = SyntheticConfig::tmall_like(5).scaled(0.05).generate().dataset;
    let path = dir.join("log.tsv");
    save_tsv(&dataset, &path).expect("write TSV");
    path
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn mbssl CLI");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join("mbssl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let log = setup_log(&dir);
    let log_s = log.to_str().unwrap();
    let ckpt = dir.join("model.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    // stats
    let (ok, text) = run(&["stats", "--data", log_s, "--target", "favorite"]);
    assert!(ok, "stats failed: {text}");
    assert!(text.contains("users"));
    assert!(text.contains("favorite"));

    // train (tiny settings)
    let (ok, text) = run(&[
        "train", "--data", log_s, "--target", "favorite", "--model", ckpt_s,
        "--epochs", "2", "--dim", "16", "--interests", "2",
    ]);
    assert!(ok, "train failed: {text}");
    assert!(ckpt.exists(), "checkpoint not written");

    // evaluate with matching dims
    let (ok, text) = run(&[
        "evaluate", "--data", log_s, "--target", "favorite", "--model", ckpt_s,
        "--dim", "16", "--interests", "2",
    ]);
    assert!(ok, "evaluate failed: {text}");
    assert!(text.contains("HR@10"), "no metrics printed: {text}");

    // recommend
    let (ok, text) = run(&[
        "recommend", "--data", log_s, "--target", "favorite", "--model", ckpt_s,
        "--dim", "16", "--interests", "2", "--user", "0", "--top", "5",
    ]);
    assert!(ok, "recommend failed: {text}");
    assert!(text.contains("1."), "no ranked list printed: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_input() {
    let (ok, text) = run(&["train", "--target", "favorite"]);
    assert!(!ok);
    assert!(text.contains("missing --data") || text.contains("error"), "{text}");

    let (ok, _) = run(&["nonsense"]);
    assert!(!ok);

    let dir = std::env::temp_dir().join("mbssl_cli_test_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let log = setup_log(&dir);
    // Mismatched checkpoint dims must fail cleanly, not panic.
    let ckpt = dir.join("never_written.ckpt");
    let (ok, text) = run(&[
        "evaluate", "--data", log.to_str().unwrap(), "--target", "favorite",
        "--model", ckpt.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(text.contains("error"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}
