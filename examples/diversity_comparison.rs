//! Diversity comparison: do K interests actually diversify
//! recommendations?
//!
//! Trains MBMISSL (K = 4) and single-vector SASRec on the same data, takes
//! each model's top-10 recommendations for a sample of users, and compares
//! beyond-accuracy metrics (catalog coverage, intra-list topic diversity)
//! using the simulator's ground-truth item topics. The multi-interest
//! claim: MBMISSL's lists should span more topics.
//!
//! ```bash
//! cargo run --release --example diversity_comparison
//! ```

use std::collections::HashSet;

use mbssl::baselines::SasRec;
use mbssl::core::{
    recommend_top_n, BehaviorSchema, Mbmissl, ModelConfig, SequentialRecommender, TrainConfig,
    Trainer,
};
use mbssl::data::preprocess::{leave_one_out, SplitConfig};
use mbssl::data::sampler::NegativeSampler;
use mbssl::data::synthetic::SyntheticConfig;
use mbssl::data::ItemId;
use mbssl::metrics::diversity::diversity_metrics;

fn top_lists<R: SequentialRecommender>(
    model: &R,
    dataset: &mbssl::data::Dataset,
    sampler: &NegativeSampler,
    users: &[usize],
    n: usize,
) -> Vec<Vec<u32>> {
    users
        .iter()
        .map(|&u| {
            let hist = &dataset.sequences[u];
            let seen: HashSet<ItemId> = sampler.seen_by(u as u32).iter().copied().collect();
            recommend_top_n(model, hist, dataset.num_items, n, &seen, 512)
                .into_iter()
                .map(|r| r.item)
                .collect()
        })
        .collect()
}

fn main() {
    let generated = SyntheticConfig::taobao_like(77).scaled(0.1).generate();
    let dataset = generated.dataset;
    let truth = generated.truth;
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        patience: 3,
        ..TrainConfig::default()
    });

    println!("training MBMISSL (K = 4) …");
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let mbmissl = Mbmissl::new(
        dataset.num_items,
        schema,
        ModelConfig {
            dim: 32,
            heads: 2,
            num_layers: 1,
            ffn_hidden: 64,
            num_interests: 4,
            extractor_hidden: 32,
            ..ModelConfig::default()
        },
    );
    trainer.fit(&mbmissl, &split, &sampler);

    println!("training SASRec (single interest vector) …");
    let sasrec = SasRec::new(dataset.num_items, 32, 2, 2, 50, 0.1, 9);
    trainer.fit(&sasrec, &split, &sampler);

    let users: Vec<usize> = (0..dataset.num_users).step_by(5).take(60).collect();
    println!("computing top-10 lists for {} users …", users.len());
    let ours = top_lists(&mbmissl, &dataset, &sampler, &users, 10);
    let theirs = top_lists(&sasrec, &dataset, &sampler, &users, 10);

    let m_ours = diversity_metrics(&ours, dataset.num_items, &truth.item_topic);
    let m_theirs = diversity_metrics(&theirs, dataset.num_items, &truth.item_topic);

    println!("\nbeyond-accuracy metrics (top-10 lists):");
    println!(
        "{:<12} {:>18} {:>22} {:>20}",
        "model", "catalog coverage", "intra-list diversity", "distinct topics"
    );
    println!(
        "{:<12} {:>18.3} {:>22.3} {:>20.2}",
        "MBMISSL", m_ours.catalog_coverage, m_ours.intra_list_diversity, m_ours.mean_distinct_categories
    );
    println!(
        "{:<12} {:>18.3} {:>22.3} {:>20.2}",
        "SASRec", m_theirs.catalog_coverage, m_theirs.intra_list_diversity, m_theirs.mean_distinct_categories
    );

    if m_ours.mean_distinct_categories > m_theirs.mean_distinct_categories {
        println!("\nmulti-interest lists span more topics ✓");
    } else {
        println!("\nnote: diversity advantage did not materialize at this scale/epochs");
    }
}
