//! E-commerce funnel scenario: shows how auxiliary behaviors (clicks,
//! carts) improve next-purchase prediction, the workload the paper's
//! introduction motivates.
//!
//! Trains MBMISSL twice — once on the full multi-behavior history, once on
//! purchase events alone — and compares, alongside a single-behavior
//! SASRec. Also demonstrates producing top-N recommendations for a user.
//!
//! ```bash
//! cargo run --release --example ecommerce_funnel
//! ```

use mbssl::baselines::SasRec;
use mbssl::core::{
    evaluate, BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, Trainer,
};
use mbssl::data::preprocess::{leave_one_out, EvalInstance, Split, SplitConfig, TrainInstance};
use mbssl::data::sampler::{EvalCandidates, NegativeSampler};
use mbssl::data::synthetic::SyntheticConfig;
use mbssl::data::{Behavior, ItemId, Sequence};

/// Keeps only target-behavior events in every history of a split.
fn purchases_only(split: &Split) -> Split {
    let f = |s: &Sequence| s.filter_behavior(split.target_behavior);
    Split {
        train: split
            .train
            .iter()
            .map(|t| TrainInstance {
                user: t.user,
                history: f(&t.history),
                target: t.target,
            })
            .filter(|t| !t.history.is_empty())
            .collect(),
        val: split
            .val
            .iter()
            .map(|t| EvalInstance {
                user: t.user,
                history: f(&t.history),
                target: t.target,
            })
            .filter(|t| !t.history.is_empty())
            .collect(),
        test: split
            .test
            .iter()
            .map(|t| EvalInstance {
                user: t.user,
                history: f(&t.history),
                target: t.target,
            })
            .filter(|t| !t.history.is_empty())
            .collect(),
        train_histories: split
            .train_histories
            .iter()
            .map(|(u, h)| (*u, f(h)))
            .filter(|(_, h)| !h.is_empty())
            .collect(),
        num_items: split.num_items,
        target_behavior: split.target_behavior,
    }
}

fn main() {
    let generated = SyntheticConfig::taobao_like(2026).scaled(0.1).generate();
    let dataset = generated.dataset;
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let candidates = EvalCandidates::build(&split.test, &sampler, 99, 11);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        patience: 3,
        ..TrainConfig::default()
    });

    let config = ModelConfig {
        dim: 32,
        heads: 2,
        num_layers: 1,
        ffn_hidden: 64,
        num_interests: 4,
        extractor_hidden: 32,
        ..ModelConfig::default()
    };
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);

    // Full multi-behavior funnel.
    println!("training MBMISSL on the full funnel (click+cart+favorite+purchase) …");
    let full_model = Mbmissl::new(dataset.num_items, schema.clone(), config.clone());
    trainer.fit(&full_model, &split, &sampler);
    let full = evaluate(&full_model, &split.test, &candidates, 256).aggregate();

    // Purchases only.
    println!("training MBMISSL on purchases only …");
    let purchase_split = purchases_only(&split);
    let purchase_candidates = EvalCandidates::build(&purchase_split.test, &sampler, 99, 11);
    let lean_model = Mbmissl::new(dataset.num_items, schema, config);
    trainer.fit(&lean_model, &purchase_split, &sampler);
    let lean = evaluate(&lean_model, &purchase_split.test, &purchase_candidates, 256).aggregate();

    // Single-behavior SASRec reference.
    println!("training SASRec …");
    let sasrec = SasRec::new(dataset.num_items, 32, 2, 2, 50, 0.1, 3);
    trainer.fit(&sasrec, &split, &sampler);
    let sas = evaluate(&sasrec, &split.test, &candidates, 256).aggregate();

    println!("\nnext-purchase prediction (HR@10 / NDCG@10):");
    println!("  MBMISSL, full funnel   : {:.4} / {:.4}", full.hr10, full.ndcg10);
    println!("  MBMISSL, purchases only: {:.4} / {:.4}", lean.hr10, lean.ndcg10);
    println!("  SASRec (behavior-blind): {:.4} / {:.4}", sas.hr10, sas.ndcg10);
    println!("\nThe funnel's shallow behaviors are what carry most users'");
    println!("preference signal — removing them collapses history length");
    println!("from ~{:.0} to ~{:.0} events per user.",
        split.test.iter().map(|t| t.history.len()).sum::<usize>() as f64
            / split.test.len().max(1) as f64,
        purchase_split.test.iter().map(|t| t.history.len()).sum::<usize>() as f64
            / purchase_split.test.len().max(1) as f64,
    );

    // Produce a top-10 recommendation list for one user with the serving
    // API, excluding items the user already purchased.
    let user_hist = &split.test[0].history;
    let already_bought: std::collections::HashSet<ItemId> = user_hist
        .filter_behavior(Behavior::Purchase)
        .items
        .into_iter()
        .collect();
    let recs = mbssl::core::recommend_top_n(
        &full_model,
        user_hist,
        dataset.num_items,
        10,
        &already_bought,
        512,
    );
    println!("\ntop-10 recommendations for test user 0 (history: {} events, {} purchases):",
        user_hist.len(),
        user_hist.filter_behavior(Behavior::Purchase).len()
    );
    for (rank, rec) in recs.iter().enumerate() {
        println!("  {:>2}. item {:>5} (score {:.3})", rank + 1, rec.item, rec.score);
    }
}
