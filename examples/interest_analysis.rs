//! Interest analysis: trains MBMISSL on data with *known* latent interests
//! and inspects how well the K extracted interests recover them, using the
//! `mbssl::core::analysis` tooling.
//!
//! The synthetic generator exports ground truth (each user's topic set,
//! each item's topic), so interest recovery is directly measurable:
//! **purity** (how concentrated each head's attention is on one topic) and
//! **coverage** (how many of the user's true topics the K heads jointly
//! find).
//!
//! ```bash
//! cargo run --release --example interest_analysis
//! ```

use mbssl::core::analysis::{
    attention_entropies, interest_recovery, mean_pairwise_cosine, recovery_summary,
};
use mbssl::core::{BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, Trainer};
use mbssl::data::preprocess::{leave_one_out, SplitConfig};
use mbssl::data::sampler::NegativeSampler;
use mbssl::data::synthetic::SyntheticConfig;

fn main() {
    let generated = SyntheticConfig::taobao_like(7).scaled(0.1).generate();
    let dataset = generated.dataset;
    let truth = generated.truth;
    let true_k = truth.user_interests[0].len();
    let num_topics = truth
        .item_topic
        .iter()
        .filter(|&&t| t != usize::MAX)
        .max()
        .map(|&t| t + 1)
        .unwrap_or(0);
    println!(
        "generated {} users with {} true interests each over {} topics",
        dataset.num_users, true_k, num_topics
    );

    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let config = ModelConfig {
        dim: 32,
        heads: 2,
        num_layers: 1,
        ffn_hidden: 64,
        num_interests: true_k, // match the planted interest count
        extractor_hidden: 32,
        ..ModelConfig::default()
    };
    let model = Mbmissl::new(dataset.num_items, schema, config.clone());
    println!("training …");
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        patience: 3,
        ..TrainConfig::default()
    });
    trainer.fit(&model, &split, &sampler);

    // Population-level recovery statistics.
    let sample: Vec<usize> = (0..dataset.num_users).step_by(7).take(60).collect();
    let mut recoveries = Vec::new();
    let mut cosines = Vec::new();
    for &u in &sample {
        let hist = &dataset.sequences[u];
        if hist.len() < 8 {
            continue;
        }
        if let Some(r) = interest_recovery(&model, hist, &truth.item_topic, &truth.user_interests[u]) {
            recoveries.push(r);
        }
        let z = model.extract_interests(&[hist]);
        cosines.push(mean_pairwise_cosine(&z, config.num_interests, config.dim));
    }
    let summary = recovery_summary(&recoveries);
    let mean_cos = cosines.iter().sum::<f64>() / cosines.len().max(1) as f64;
    println!("\ninterest-recovery analysis over {} users:", summary.users);
    println!(
        "  mean head purity    : {:.3}  (attention mass on the head's dominant topic; chance ≈ {:.3})",
        summary.mean_purity,
        1.0 / num_topics.max(1) as f64
    );
    println!(
        "  mean topic coverage : {:.3}  (fraction of true interests matched by some head)",
        summary.mean_coverage
    );
    println!(
        "  mean pairwise cosine: {:.3}  (between a user's interests; lower = better disentangled)",
        mean_cos
    );

    // Show one user's heads in detail.
    if let Some(&u) = sample.iter().find(|&&u| dataset.sequences[u].len() >= 12) {
        let hist = &dataset.sequences[u];
        let (batch, weights) = model.inspect_attention(&[hist]);
        let l = batch.max_len;
        let k = weights.len() / l;
        let entropies = attention_entropies(&batch, &weights);
        println!(
            "\nuser {u}: true interests (topics) = {:?}",
            truth.user_interests[u]
        );
        for head in 0..k {
            let mut top: Vec<(usize, f32)> = (0..l)
                .filter(|&t| batch.valid[t] != 0.0)
                .map(|t| (t, weights[head * l + t]))
                .collect();
            top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let attended: Vec<String> = top
                .iter()
                .take(4)
                .map(|&(t, w)| {
                    format!(
                        "item{}(topic {}, w={:.2})",
                        batch.items[t], truth.item_topic[batch.items[t]], w
                    )
                })
                .collect();
            println!(
                "  head {head} (entropy {:.2}): {}",
                entropies[head],
                attended.join(", ")
            );
        }
    }
}
