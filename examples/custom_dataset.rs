//! Custom dataset: loading your own multi-behavior log from TSV, running
//! the preprocessing pipeline (k-core → leave-one-out), training, saving a
//! checkpoint, and reloading it into a fresh model.
//!
//! ```bash
//! cargo run --release --example custom_dataset
//! ```

use mbssl::core::{
    evaluate, BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, TrainableRecommender, Trainer,
};
use mbssl::data::io::{load_tsv, save_tsv};
use mbssl::data::preprocess::{k_core, leave_one_out, SplitConfig};
use mbssl::data::sampler::{EvalCandidates, NegativeSampler};
use mbssl::data::synthetic::SyntheticConfig;
use mbssl::data::Behavior;
use mbssl::tensor::serialize::{load_params_from_file, save_params_to_file};

fn main() {
    let dir = std::env::temp_dir().join("mbssl_custom_dataset_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let tsv_path = dir.join("my_log.tsv");
    let ckpt_path = dir.join("model.ckpt");

    // 0. Stand-in for "your production log": export a synthetic one to TSV
    //    with the exact format the loader expects
    //    (user \t item \t behavior \t timestamp).
    let demo = SyntheticConfig::tmall_like(9).scaled(0.1).generate().dataset;
    save_tsv(&demo, &tsv_path).expect("write TSV");
    println!("wrote demo log to {}", tsv_path.display());

    // 1. Load the TSV. Ids are remapped densely, events sorted by time.
    let raw = load_tsv(&tsv_path, Behavior::Favorite).expect("parse TSV");
    println!(
        "loaded: {} users, {} items, {} interactions",
        raw.num_users,
        raw.num_items,
        raw.num_interactions()
    );

    // 2. Clean: 5-core users, 3-core items.
    let dataset = k_core(&raw, 5, 3);
    println!(
        "after 5/3-core: {} users, {} items, {} interactions",
        dataset.num_users,
        dataset.num_items,
        dataset.num_interactions()
    );

    // 3. Split + train.
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let config = ModelConfig {
        dim: 32,
        heads: 2,
        num_layers: 1,
        ffn_hidden: 64,
        num_interests: 3,
        extractor_hidden: 32,
        ..ModelConfig::default()
    };
    let model = Mbmissl::new(dataset.num_items, schema.clone(), config.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        patience: 2,
        ..TrainConfig::default()
    });
    let report = trainer.fit(&model, &split, &sampler);
    println!(
        "trained {} epochs, best val NDCG@10 = {:.4}",
        report.epochs_run, report.best_val_ndcg10
    );

    // 4. Checkpoint.
    save_params_to_file(&model.named_params(), &ckpt_path).expect("save checkpoint");
    println!("checkpoint saved to {}", ckpt_path.display());

    // 5. Reload into a freshly constructed model and verify predictions
    //    match exactly.
    let restored = Mbmissl::new(dataset.num_items, schema, config);
    load_params_from_file(&restored.named_params(), &ckpt_path).expect("load checkpoint");

    let candidates = EvalCandidates::build(&split.test, &sampler, 99, 3);
    let original = evaluate(&model, &split.test, &candidates, 256).aggregate();
    let reloaded = evaluate(&restored, &split.test, &candidates, 256).aggregate();
    println!("\ntest NDCG@10: original {:.6}, reloaded {:.6}", original.ndcg10, reloaded.ndcg10);
    assert!(
        (original.ndcg10 - reloaded.ndcg10).abs() < 1e-9,
        "checkpoint roundtrip changed predictions"
    );
    println!("checkpoint roundtrip verified ✓");

    std::fs::remove_dir_all(&dir).ok();
}
