//! Quickstart: generate a multi-behavior dataset, train MBMISSL, and
//! evaluate it against a popularity baseline.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mbssl::baselines::Pop;
use mbssl::core::{evaluate, BehaviorSchema, Mbmissl, ModelConfig, TrainConfig, Trainer};
use mbssl::data::preprocess::{leave_one_out, SplitConfig};
use mbssl::data::sampler::{EvalCandidates, NegativeSampler};
use mbssl::data::synthetic::SyntheticConfig;

fn main() {
    // 1. Data: a seeded synthetic e-commerce log with four behaviors
    //    (click → cart → favorite → purchase), scaled down for a fast demo.
    let generated = SyntheticConfig::taobao_like(42).scaled(0.1).generate();
    let dataset = generated.dataset;
    println!("dataset: {}", dataset.name);
    println!(
        "  users={} items={} interactions={}",
        dataset.num_users,
        dataset.num_items,
        dataset.num_interactions()
    );
    for &b in &dataset.behaviors {
        println!("  {:>9}: {}", b.token(), dataset.count_behavior(b));
    }

    // 2. Protocol: chronological leave-one-out + 1-vs-99 candidates.
    let split = leave_one_out(&dataset, &SplitConfig::default());
    let sampler = NegativeSampler::from_dataset(&dataset);
    let candidates = EvalCandidates::build(&split.test, &sampler, 99, 7);
    println!(
        "split: {} train instances, {} val, {} test",
        split.train.len(),
        split.val.len(),
        split.test.len()
    );

    // 3. Model: MBMISSL with a compact configuration.
    let schema = BehaviorSchema::new(dataset.behaviors.clone(), dataset.target_behavior);
    let config = ModelConfig {
        dim: 32,
        heads: 2,
        num_layers: 1,
        ffn_hidden: 64,
        num_interests: 4,
        extractor_hidden: 32,
        ..ModelConfig::default()
    };
    let model = Mbmissl::new(dataset.num_items, schema, config);

    // 4. Train with early stopping on validation NDCG@10.
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        patience: 3,
        verbose: true,
        ..TrainConfig::default()
    });
    let report = trainer.fit(&model, &split, &sampler);
    println!(
        "trained {} epochs in {:.1}s (best val NDCG@10 = {:.4} at epoch {})",
        report.epochs_run, report.total_seconds, report.best_val_ndcg10, report.best_epoch
    );

    // 5. Evaluate on the held-out test interactions.
    let ours = evaluate(&model, &split.test, &candidates, 256).aggregate();
    let pop = Pop::fit(&split);
    let baseline = evaluate(&pop, &split.test, &candidates, 256).aggregate();
    println!("\ntest metrics (100 candidates per instance):");
    println!("  MBMISSL: {}", ours.summary());
    println!("  POP    : {}", baseline.summary());
    if ours.ndcg10 > baseline.ndcg10 {
        println!("\nMBMISSL beats the popularity baseline ✓");
    } else {
        println!("\nwarning: model did not beat POP — train longer (epochs) or larger (scale)");
    }
}
